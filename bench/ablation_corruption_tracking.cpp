// Ablation: value-diff corruption tracking (the paper's approach — compare
// faulty vs fault-free values, §III-D) versus classic dataflow taint
// (what prior instruction-level tools use, §IV-B).
//
// Taint cannot see masking: once a location is tainted, a shift that drops
// the corrupted bits or an addition that washes the error below precision
// still leaves it "corrupted". The ACL built from value comparison is what
// lets FlipTracker observe the Shifting/Truncation/CS patterns at all.
// This bench quantifies that gap per application: taint kill counts have
// no overwrite-with-equal-value deaths, so the alive set stays larger, and
// mask-type pattern sites are invisible.
#include "bench_common.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  const util::Cli cli(argc, argv);
  const auto samples =
      static_cast<std::size_t>(cli.get_int("samples", cfg.full ? 16 : 6));
  bench::print_header(
      "Ablation - value-diff ACL (paper) vs dataflow taint (prior work)",
      cfg);
  std::printf("samples per app: %zu (--samples=N)\n\n", samples);

  util::Table table({"app", "mode", "max ACL", "overwrite kills",
                     "dead kills", "masked ops seen"});

  for (const std::string name : {"CG", "MG", "IS", "KMEANS", "LULESH"}) {
    core::AnalysisSession session(apps::build_app(name));
    const auto sites = session.whole_program_sites();
    const auto plans = fault::sample_plans(
        *sites, fault::TargetClass::Internal, samples, cfg.seed);

    std::uint64_t vd_max = 0, vd_over = 0, vd_dead = 0, vd_masked = 0;
    std::uint64_t tt_max = 0, tt_over = 0, tt_dead = 0;
    for (const auto& plan : plans) {
      const auto diff = session.diff_with(plan);
      const auto span = std::span<const vm::DynInstr>(
          diff.faulty.records.data(), diff.usable_records());
      const auto events = trace::LocationEvents::build(span);

      // Paper mode: value comparison, with the pattern detectors attached.
      const auto rep = patterns::detect_patterns(diff, events);
      vd_max = std::max<std::uint64_t>(vd_max, rep.acl.max_count);
      vd_over += rep.acl.kills(acl::AclEventKind::KillOverwrite);
      vd_dead += rep.acl.kills(acl::AclEventKind::KillDead);
      vd_masked += rep.count(patterns::PatternKind::Shifting) +
                   rep.count(patterns::PatternKind::Truncation) +
                   rep.count(patterns::PatternKind::ConditionalStatement);

      // Prior-work mode: pure dataflow taint from the injected write.
      if (plan.kind == vm::FaultPlan::Kind::ResultBit &&
          plan.dyn_index < diff.usable_records()) {
        const auto& seed_rec = diff.faulty.records[plan.dyn_index];
        if (seed_rec.result_loc != vm::kNoLoc) {
          const auto taint = acl::build_acl_taint(
              span.subspan(plan.dyn_index), events, seed_rec.result_loc,
              plan.dyn_index);
          tt_max = std::max<std::uint64_t>(tt_max, taint.max_count);
          tt_over += taint.kills(acl::AclEventKind::KillOverwrite);
          tt_dead += taint.kills(acl::AclEventKind::KillDead);
        }
      }
    }
    table.add_row({name, "value-diff", std::to_string(vd_max),
                   std::to_string(vd_over), std::to_string(vd_dead),
                   std::to_string(vd_masked)});
    table.add_row({name, "taint", std::to_string(tt_max),
                   std::to_string(tt_over), std::to_string(tt_dead),
                   "0 (invisible)"});
  }
  table.print(std::cout);
  std::printf(
      "\nReading: taint's alive set peaks higher (no masking deaths) and\n"
      "never surfaces Shifting/Truncation/CS sites - the paper's value-\n"
      "comparison design is what makes those patterns observable.\n");
  return 0;
}
