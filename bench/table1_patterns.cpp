// Table I: resilience computation patterns found in the code regions of
// CG, MG, KMEANS, IS and LULESH — with source lines and the dynamic
// instruction count of one iteration (region instance 0).
//
// Method (§III-D): sample a handful of injections per region (internal
// result bits and region-entry input bits), run the differential ACL sweep
// with the pattern detectors, and union what is observed. A pattern counts
// for a region when it fires *inside* that region's instance-0 span.
#include <array>

#include "bench_common.h"
#include "util/cli.h"

namespace {

using namespace ft;

struct RegionPatterns {
  std::array<bool, patterns::kNumPatterns> found{};
  std::uint64_t instr_per_iteration = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  const util::Cli cli(argc, argv);
  const auto samples =
      static_cast<std::size_t>(cli.get_int("samples", cfg.full ? 24 : 12));
  bench::print_header("Table I - resilience patterns per code region", cfg);
  std::printf("injection samples per region/class: %zu (--samples=N)\n\n",
              samples);

  std::vector<std::string> header = {"program", "region", "lines",
                                     "#instr/iter", "found?"};
  for (const auto kind : patterns::kAllPatterns) {
    header.emplace_back(patterns::pattern_name(kind));
  }
  util::Table table(header);

  for (const std::string name : {"CG", "MG", "KMEANS", "IS", "LULESH"}) {
    core::AnalysisSession session(apps::build_app(name));
    const auto& app = session.app();
    const auto instances = session.region_instances();
    for (const auto& rd : app.analysis_regions) {
      const auto inst = trace::find_instance(*instances, rd.id, 0);
      if (!inst) continue;
      RegionPatterns rp;
      rp.instr_per_iteration = inst->body_length();

      // A pattern is credited to this region when it fires inside *any*
      // dynamic instance of it — Repeated Additions, for example, amortizes
      // the error across later instances of the same loop (Table II).
      const auto region_spans = trace::instances_of(*instances, rd.id);
      auto inside_region = [&](std::uint64_t index) {
        for (const auto& span : region_spans) {
          if (index >= span.enter_index && index <= span.exit_index) {
            return true;
          }
        }
        return false;
      };

      const auto sites = session.region_sites(rd.id, 0);
      for (const auto target :
           {fault::TargetClass::Internal, fault::TargetClass::Input}) {
        const auto plans = fault::sample_plans(
            *sites, target, samples,
            cfg.seed + (target == fault::TargetClass::Input ? 17 : 0));
        for (const auto& plan : plans) {
          const auto rep = session.patterns_for(plan);
          for (const auto& pi : rep.instances) {
            if (!inside_region(pi.index)) continue;
            rp.found[patterns::pattern_index(pi.kind)] = true;
          }
        }
      }

      bool any = false;
      for (const bool b : rp.found) any |= b;
      const auto& info = app.module.region(rd.id);
      std::vector<std::string> row = {
          name, rd.name,
          std::to_string(info.line_begin) + "-" + std::to_string(info.line_end),
          std::to_string(rp.instr_per_iteration), any ? "YES" : "NO"};
      for (const auto kind : patterns::kAllPatterns) {
        row.emplace_back(rp.found[patterns::pattern_index(kind)] ? "x" : "");
      }
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
  std::printf(
      "\nPaper shape: MG regions show RA+DO; is_b shows Shifting; KMEANS\n"
      "k_c/k_d show CS/DO; LULESH l_a shows DCL+DO; DO is ubiquitous.\n");
  return 0;
}
