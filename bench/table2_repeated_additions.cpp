// Table II: the Repeated Additions pattern taking effect in MG — a bit
// flip lands in an element of u[] during the first V-cycle, and the error
// magnitude (Eq. 2) of that element shrinks every time the smoother
// re-accumulates it.
//
// Paper shape: original vs corrupted values per mg3P invocation, with
// monotonically decreasing error magnitude (their Table II: 6.2e-10 ->
// 1.3e-10 -> 6.5e-11 over invocations 2-4).
#include "bench_common.h"
#include "util/bits.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  const util::Cli cli(argc, argv);
  bench::print_header("Table II - Repeated Additions in MG", cfg);

  core::AnalysisSession session(apps::build_mg());
  const auto& app = session.app();
  const auto u = app.module.global(*app.module.find_global("u"));
  // u[2][2][3] on the 8^3 fine grid; bit 40, like the paper's experiment.
  // Injected at the second V-cycle entry: u is still zero at the first
  // entry, where a bit-40 flip of 0.0 is a denormal below the smoother's
  // noise floor (the paper's itr1 row is the same situation — original 0,
  // error magnitude infinite).
  const auto elem = ((2 * 8 + 2) * 8 + 3);
  const auto addr = u.addr + elem * 8;
  const auto bit = static_cast<std::uint32_t>(cli.get_int("bit", 40));
  const auto instance =
      static_cast<std::uint32_t>(cli.get_int("iteration", 1));

  const auto plan =
      vm::FaultPlan::region_input_bit(app.main_region, instance, addr, 8, bit);
  const auto diff = session.diff_with(plan);
  if (diff.diverged()) {
    std::printf("unexpected control-flow divergence at %llu\n",
                static_cast<unsigned long long>(diff.divergence_index));
  }

  // Last write to the element within each main-loop instance.
  const auto span = std::span<const vm::DynInstr>(
      diff.faulty.records.data(), diff.usable_records());
  const auto instances = trace::segment_regions(span);
  const auto mains = trace::instances_of(instances, app.main_region);

  util::Table table(
      {"invocation", "original value", "corrupted value", "error magnitude"});
  double prev_mag = std::numeric_limits<double>::infinity();
  bool monotone = true;
  bool corruption_seen = false;
  for (const auto& inst : mains) {
    const vm::DynInstr* last_write = nullptr;
    std::uint64_t clean_bits = 0;
    for (std::uint64_t i = inst.body_begin();
         i < inst.body_end() && i < diff.usable_records(); ++i) {
      const auto& r = diff.faulty.records[i];
      if (r.op == ir::Opcode::Store && r.mem_addr == addr) {
        last_write = &r;
        clean_bits = diff.clean_bits[i];
      }
    }
    if (!last_write) continue;
    const double clean = util::bits_to_f64(clean_bits);
    const double faulty = util::bits_to_f64(last_write->result_bits);
    const double mag =
        acl::error_magnitude(clean_bits, last_write->result_bits,
                             ir::Type::F64);
    // Monotonicity is judged from the first corrupted value onward
    // (pre-injection iterations are exactly clean).
    if (mag > 0.0) corruption_seen = true;
    if (corruption_seen) {
      if (mag > prev_mag) monotone = false;
      prev_mag = mag;
    }
    table.add_row({"itr" + std::to_string(inst.instance + 1),
                   util::Table::num(clean, 15), util::Table::num(faulty, 15),
                   mag == 0.0 ? "0" : util::Table::num(mag, 12)});
  }
  table.print(std::cout);
  std::printf("\nerror magnitude decreases monotonically: %s "
              "(paper: yes, Table II)\n",
              monotone ? "YES" : "NO");
  std::printf("final run verification: %s\n",
              app.verifier(diff.faulty_result.outputs,
                           diff.clean_result.outputs)
                  ? "PASS (fault tolerated)"
                  : "FAIL");
  return 0;
}
