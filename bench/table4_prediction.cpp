// Table IV: Use Case 2 — predicting application resilience from pattern
// rates with Bayesian multivariate linear regression (Eq. 3).
//
// Pipeline, exactly as §VII-B:
//  1. for each of the ten benchmarks, measure the six pattern rates from a
//     fault-free trace and the success rate from a fault-injection
//     campaign;
//  2. experiment 1: fit on all ten, report R^2 (paper: 96.4%);
//  3. experiment 2: leave-one-out — train on nine, predict the tenth,
//     report the prediction error rate (paper: ~14.3% average excluding
//     the DC outlier at 64.6%);
//  4. feature analysis: standardized regression coefficients.
#include "bench_common.h"
#include "model/regression.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  bench::print_header("Table IV - pattern rates and resilience prediction",
                      cfg);

  const auto& names = apps::all_app_names();
  model::Matrix x(names.size(), patterns::kNumPatterns);
  std::vector<double> sr(names.size());

  // One request measures all ten benchmarks: pattern rates from the golden
  // traces (dropped after prep to bound memory) plus whole-app campaigns,
  // batched across apps on the shared pool. The paper uses 99%/1% for the
  // use cases.
  core::AnalysisRequest request;
  for (const auto& name : names) request.app(name);
  const auto report = core::run_analysis(
      request.pattern_rates()
          .app_campaign(cfg.campaign(250, 0.99, 0.01))
          .execution(cfg.mode()));

  util::Table features({"benchmark", "cond rate", "shift rate", "trunc rate",
                        "dead loc rate", "rep add rate", "overwrite rate",
                        "measured SR"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& app_report = report.apps[i];
    sr[i] = app_report.whole_app->success_rate();

    using PK = patterns::PatternKind;
    const PK order[] = {PK::ConditionalStatement, PK::Shifting,
                        PK::Truncation, PK::DeadCorruptedLocations,
                        PK::RepeatedAdditions, PK::DataOverwriting};
    std::vector<std::string> row = {names[i]};
    for (std::size_t j = 0; j < patterns::kNumPatterns; ++j) {
      x.at(i, j) = app_report.rates->of(order[j]);
      row.push_back(util::Table::num(x.at(i, j), 6));
    }
    row.push_back(util::Table::num(sr[i], 3));
    features.add_row(std::move(row));
  }
  features.print(std::cout);
  bench::print_report_meta(report);

  // Experiment 1: fit on all ten benchmarks.
  model::BayesianLinearRegression reg;
  model::RegressionOptions opts;
  opts.prior_precision = 1e-6;
  reg.fit(x, sr, opts);
  std::printf("\nExperiment 1 - R-square on all ten benchmarks: %s "
              "(paper: 96.4%%)\n",
              util::Table::pct(reg.r_squared(x, sr), 1).c_str());

  // Experiment 2: leave-one-out prediction.
  const auto loo = model::leave_one_out(x, sr, opts);
  util::Table pred({"benchmark", "measured SR", "predicted SR",
                    "prediction err. rate"});
  double err_excl_worst = 0.0;
  double worst = 0.0;
  std::size_t worst_i = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (loo.error_rate[i] > worst) {
      worst = loo.error_rate[i];
      worst_i = i;
    }
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    pred.add_row({names[i], util::Table::num(sr[i], 3),
                  util::Table::num(loo.predicted[i], 3),
                  util::Table::pct(loo.error_rate[i], 1)});
    if (i != worst_i) err_excl_worst += loo.error_rate[i];
  }
  std::printf("\nExperiment 2 - leave-one-out prediction:\n");
  pred.print(std::cout);
  std::printf("average prediction error: %s; excluding the worst (%s): %s\n"
              "(paper: 14.3%% average excluding the DC outlier at 64.6%%)\n",
              util::Table::pct(loo.mean_error_rate, 1).c_str(),
              names[worst_i].c_str(),
              util::Table::pct(err_excl_worst / (names.size() - 1), 1)
                  .c_str());

  // Feature analysis: standardized regression coefficients.
  const auto std_coef = reg.standardized_coefficients(x, sr);
  util::Table coef({"pattern", "standardized coefficient"});
  const char* labels[] = {"Conditional Statement", "Shifting", "Truncation",
                          "Dead Location", "Repeated Addition",
                          "Overwriting"};
  for (std::size_t j = 0; j < patterns::kNumPatterns; ++j) {
    coef.add_row({labels[j], util::Table::num(std_coef[j], 3)});
  }
  std::printf("\nFeature analysis (paper: Truncation 1.73, CS 1.69, "
              "Shifting 1.48 dominate):\n");
  coef.print(std::cout);
  return 0;
}
