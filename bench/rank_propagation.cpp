// Cross-rank error propagation: the multi-rank question the paper's
// single-process campaigns cannot ask. For each rank-decomposed workload
// (CG/MG/LULESH-RANKED), runs one cross-rank campaign at --nranks (default
// 4) — one world per trial, one VM per rank, one injected rank — and
// reports the cross-rank outcome taxonomy, the per-injected-rank success
// rates, and the propagation-depth histogram (how many peer ranks each
// surviving error contaminated). A second campaign over the SAME program at
// world size 1 gives the serial baseline (the decomposition degenerates to
// the full problem), reproducing the serial-vs-parallel resilience
// comparison of Wu et al. end to end.
//
// Determinism gate (scripts/bench_smoke.sh section 5): the multi-rank
// campaign runs twice — snapshot forking on and off — and the binary exits
// nonzero if any outcome count differs.
//
//   rank_propagation [--trials=N] [--seed=N] [--nranks=N] [--apps=A,B]
#include <memory>

#include "bench_common.h"
#include "fault/rank_campaign.h"
#include "vm/decode.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  const util::Cli cli(argc, argv);
  const auto nranks = static_cast<std::int64_t>(cli.get_int("nranks", 4));
  const auto apps_arg = cli.get("apps", "CG-RANKED,MG-RANKED,LULESH-RANKED");
  bench::print_header("cross-rank error propagation", cfg);

  std::vector<std::string> names;
  for (std::size_t pos = 0; pos < apps_arg.size();) {
    const auto comma = apps_arg.find(',', pos);
    names.push_back(apps_arg.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  const std::size_t trials = cfg.trials != 0 ? cfg.trials : 48;
  bool counts_agree = true;

  util::Table table({"app", "world", "SR", "masked", "absorbed",
                     "propagated", "corrupted", "trapped", "mean-depth"});

  for (const auto& name : names) {
    core::AnalysisSession session(apps::build_app(name));
    const auto& spec = session.app();

    fault::RankCampaignConfig rc;
    rc.nranks = nranks;
    rc.trials = trials;
    rc.seed = cfg.seed;

    const util::Stopwatch sw;
    const auto parallel = session.rank_campaign(rc);
    const double par_ms = sw.millis();

    // ForkPolicy A/B: same prepared campaign, forking off — counts must be
    // bit-identical (the determinism gate).
    auto prepared = fault::prepare_rank_campaign(
        *session.rank_enumeration(nranks), spec.base, rc);
    prepared.fork.enabled = false;
    util::ThreadPool pool;
    const auto nofork = fault::run_rank_campaign(
        *session.program(), prepared, spec.verifier, pool);
    const bool same = parallel.masked_locally == nofork.masked_locally &&
                      parallel.absorbed_by_collective ==
                          nofork.absorbed_by_collective &&
                      parallel.propagated == nofork.propagated &&
                      parallel.corrupted_output == nofork.corrupted_output &&
                      parallel.trapped == nofork.trapped &&
                      parallel.propagation_depth == nofork.propagation_depth;
    counts_agree = counts_agree && same;

    rc.nranks = 1;  // the serial baseline of the same program
    const auto serial = session.rank_campaign(rc);

    const auto row = [&](const std::string& world,
                         const fault::RankCampaignResult& r) {
      table.add_row({name, world, util::Table::num(r.success_rate()),
                     std::to_string(r.masked_locally),
                     std::to_string(r.absorbed_by_collective),
                     std::to_string(r.propagated),
                     std::to_string(r.corrupted_output),
                     std::to_string(r.trapped),
                     util::Table::num(r.mean_propagation_depth(), 2)});
    };
    row("1", serial);
    row(std::to_string(nranks), parallel);

    std::printf("%s: %zu trials x %lld ranks in %.1f ms, fork reuse %llu "
                "snapshots / %llu instructions, per-rank SR [",
                name.c_str(), parallel.trials,
                static_cast<long long>(nranks), par_ms,
                static_cast<unsigned long long>(parallel.snapshots_taken),
                static_cast<unsigned long long>(
                    parallel.prefix_instructions_saved));
    for (std::int64_t r = 0; r < nranks; ++r) {
      std::printf("%s%.2f", r ? " " : "", parallel.rank_success_rate(r));
    }
    std::printf("]\n");
    std::printf("propagation depth histogram:");
    for (std::size_t k = 0; k < parallel.propagation_depth.size(); ++k) {
      std::printf(" %zu:%zu", k, parallel.propagation_depth[k]);
    }
    std::printf("\n%s\n", same ? "fork A/B counts: identical"
                               : "fork A/B counts: MISMATCH");
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf("rank determinism: %s\n", counts_agree ? "OK" : "MISMATCH");
  return counts_agree ? 0 : 1;
}
