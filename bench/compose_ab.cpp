// Compositional-campaign A/B: exhaustive snapshot-forked trials vs the
// per-section composed engine (src/compose/), cold and warm-incremental.
//
// Three legs. (1) Equivalence sweep: on every application the composed
// engine's outcome counts must be bit-identical to
// fault::run_prepared_campaign on the same prepared plans — the binary
// exits nonzero on any mismatch. (2) Cold composed run on the designated
// app (CG) against an empty artifact store, publishing every section
// summary. (3) One-instruction constant edit in the latest-executing code,
// then a warm-incremental run against the same store: untouched summary
// keys must hit, only affected sections may re-summarize, and the counts
// must equal a from-scratch exhaustive campaign on the edited module.
//
// The gated ratio is the SUMMARIZATION phase (ComposedResult::
// summarize_seconds): store loads plus per-site boundary measurement —
// the work a warm store collapses. Trial closure (close_seconds) is
// excluded from the gate by design: a trial whose suffix runs through the
// edited code must re-execute for the counts to stay exact, so that cost
// is semantically irreducible, not a caching miss. The total-time ratio
// is printed alongside for honesty. scripts/bench_smoke.sh section 9
// gates on `compose speedup` >= 5x.
//
//   compose_ab [--trials=N] [--seed=N]
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.h"
#include "bench_common.h"
#include "compose/compose.h"
#include "fault/campaign.h"
#include "fault/sites.h"
#include "store/artifact_store.h"
#include "util/thread_pool.h"
#include "vm/decode.h"
#include "vm/interp.h"

namespace {

using namespace ft;

/// Semantic outcome-count equality (what the faults DID); accounting
/// fields legitimately differ between engines and are not compared.
[[nodiscard]] bool same_counts(const fault::CampaignResult& a,
                               const fault::CampaignResult& b) {
  return a.trials == b.trials && a.success == b.success &&
         a.failed == b.failed && a.crashed == b.crashed &&
         a.detected_recovered == b.detected_recovered &&
         a.detected_unrecoverable == b.detected_unrecoverable &&
         a.population_bits == b.population_bits;
}

inline constexpr std::uint32_t kNoPc = ~std::uint32_t{0};

/// The one-instruction constant tweak (same selection as
/// tests/compose_test.cpp): the LATEST-first-executing f64 immediate whose
/// edit keeps the golden run completing with an unchanged dynamic
/// instruction count. Editing code that only runs late leaves every
/// earlier section's entry state and per-instruction code footprint
/// intact — the shape of edit the incremental path is built for.
[[nodiscard]] std::uint32_t mutate_one_instruction(
    apps::AppSpec& spec, const vm::DecodedProgram& prog,
    const compose::SectionPlan& plan, std::uint64_t golden_instrs) {
  const auto* code = prog.code();
  const std::size_t nsec = plan.sections.size();
  struct Candidate {
    std::size_t first_sec;
    std::uint32_t pc;
  };
  std::vector<Candidate> cands;
  for (std::uint32_t pc = 0; pc < prog.code_size(); ++pc) {
    const auto& d = code[pc];
    const auto& ins =
        spec.module.function(d.func).blocks[d.block].instrs[d.instr];
    bool has_immf = false;
    for (const auto& op : ins.ops) {
      has_immf = has_immf || op.kind == ir::OperandKind::ImmF;
    }
    if (!has_immf) continue;
    std::size_t first = nsec;
    for (std::size_t s = 0; s < nsec && first == nsec; ++s) {
      if (std::binary_search(plan.sections[s].pcs.begin(),
                             plan.sections[s].pcs.end(), pc)) {
        first = s;
      }
    }
    if (first == nsec) continue;  // never executed: proves nothing
    cands.push_back({first, pc});
  }
  std::sort(cands.begin(), cands.end(), [](const auto& a, const auto& b) {
    return a.first_sec > b.first_sec;
  });
  for (const auto& c : cands) {
    const auto& d = code[c.pc];
    auto candidate = spec.module;
    for (auto& op :
         candidate.function(d.func).blocks[d.block].instrs[d.instr].ops) {
      if (op.kind == ir::OperandKind::ImmF) {
        op.imm_f = op.imm_f * 1.0009765625 + 0.0009765625;
      }
    }
    const auto decoded = vm::DecodedProgram::decode(candidate);
    const auto run = vm::Vm::run(decoded, spec.base);
    if (!run.completed() || run.instructions != golden_instrs) continue;
    spec.module = std::move(candidate);
    return c.pc;
  }
  return kNoPc;
}

[[nodiscard]] fault::CampaignResult exhaustive_counts(
    core::AnalysisSession& session, const fault::CampaignConfig& cfg,
    util::ThreadPool& pool) {
  const auto prepared = fault::prepare_campaign(
      *session.whole_program_sites(), fault::TargetClass::Internal,
      session.app().base, cfg);
  return fault::run_prepared_campaign(*session.program(), prepared,
                                      session.golden()->outputs,
                                      session.app().verifier, pool);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  bench::print_header(
      "compose A/B - exhaustive vs composed vs warm-incremental", cfg);

  fault::CampaignConfig ccfg;
  ccfg.trials = cfg.trials != 0 ? cfg.trials : 32;
  ccfg.seed = cfg.seed;
  util::ThreadPool pool(4);

  // --- leg 1: equivalence sweep, every app --------------------------------
  util::Table table({"app", "sections", "trials", "avoided", "composed ms",
                     "counts"});
  bool all_equal = true;
  for (const auto& name : apps::all_app_names()) {
    core::AnalysisSession session(apps::build_app(name));
    const auto exhaustive = exhaustive_counts(session, ccfg, pool);
    const auto prepared = fault::prepare_campaign(
        *session.whole_program_sites(), fault::TargetClass::Internal,
        session.app().base, ccfg);
    const auto plan = compose::plan_sections(
        *session.program(), *session.golden_trace(),
        *session.region_instances(), prepared);
    util::Stopwatch sw;
    const auto composed = compose::run_composed_campaign(
        *session.program(), prepared, plan, session.golden()->outputs,
        session.app().verifier, pool);
    const double ms = sw.seconds() * 1e3;
    const bool ok = same_counts(composed.counts, exhaustive);
    all_equal = all_equal && ok;
    table.add_row({name, std::to_string(composed.sections_total),
                   std::to_string(composed.counts.trials),
                   std::to_string(composed.trials_avoided),
                   std::to_string(static_cast<int>(ms)),
                   ok ? "OK" : "MISMATCH"});
  }
  table.print(std::cout);
  if (!all_equal) {
    std::printf("\ncompose equivalence: MISMATCH\n");
    return 1;
  }
  std::printf("compose equivalence: OK (all apps)\n\n");

  // --- legs 2+3: cold populate, one-instruction edit, warm-incremental ----
  const std::string app_name = "CG";
  std::string store_dir;
  {
    std::string templ =
        (std::filesystem::temp_directory_path() / "ft_compose_ab_XXXXXX")
            .string();
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }
    store_dir = buf.data();
  }
  auto store = std::make_shared<store::ArtifactStore>(store_dir + "/store");

  auto app = apps::build_app(app_name);
  auto cold_session = std::make_shared<core::AnalysisSession>(app);
  cold_session->attach_store(store);
  const auto cold = cold_session->run_compositional(ccfg);
  const double cold_total = cold.summarize_seconds + cold.close_seconds;

  // The edit: replicate the engine's section decomposition on the pristine
  // module, then tweak the latest-executing f64 constant.
  const auto pristine = fault::prepare_campaign(
      *cold_session->whole_program_sites(), fault::TargetClass::Internal,
      app.base, ccfg);
  const auto plan = compose::plan_sections(
      *cold_session->program(), *cold_session->golden_trace(),
      *cold_session->region_instances(), pristine);
  auto mutated = app;
  const auto pc = mutate_one_instruction(mutated, *cold_session->program(),
                                         plan,
                                         cold_session->golden()->instructions);
  if (pc == kNoPc) {
    std::fprintf(stderr, "no tweakable f64 constant in %s\n",
                 app_name.c_str());
    return 1;
  }

  auto inc_session = std::make_shared<core::AnalysisSession>(mutated);
  inc_session->attach_store(store);
  const auto inc = inc_session->run_compositional(ccfg);
  const double inc_total = inc.summarize_seconds + inc.close_seconds;

  // Identity: the incremental counts must equal a from-scratch exhaustive
  // campaign on the edited module.
  const auto inc_exhaustive = exhaustive_counts(*inc_session, ccfg, pool);
  const bool inc_equal = same_counts(inc.counts, inc_exhaustive);
  // Incrementality: untouched summary keys hit the store; only affected
  // sections re-summarize.
  const bool incremental = inc.summary_store_hits > 0 &&
                           inc.summaries_computed < cold.summaries_computed &&
                           inc.sections_reexecuted < inc.sections_total;

  std::printf("edit: %s pc %u (latest-executing f64 constant)\n",
              app_name.c_str(), pc);
  std::printf("cold: summarize %8.2f ms + close %8.2f ms  "
              "(%zu summaries computed, %zu hits)\n",
              cold.summarize_seconds * 1e3, cold.close_seconds * 1e3,
              cold.summaries_computed, cold.summary_store_hits);
  std::printf("inc:  summarize %8.2f ms + close %8.2f ms  "
              "(%zu summaries computed, %zu hits, %llu of %zu sections "
              "re-executed, %llu trials avoided)\n",
              inc.summarize_seconds * 1e3, inc.close_seconds * 1e3,
              inc.summaries_computed, inc.summary_store_hits,
              static_cast<unsigned long long>(inc.sections_reexecuted),
              inc.sections_total,
              static_cast<unsigned long long>(inc.trials_avoided));
  std::printf("identity: %s; incremental: %s\n",
              inc_equal ? "OK" : "MISMATCH",
              incremental ? "OK" : "VIOLATED");
  std::printf("total-time ratio: %.2fx (suffix re-execution through the "
              "edit is semantically required and not gated)\n",
              inc_total > 0 ? cold_total / inc_total : 0.0);
  std::printf("compose speedup: %.2fx\n",
              cold.summarize_seconds /
                  std::max(inc.summarize_seconds, 1e-6));

  std::error_code ec;
  std::filesystem::remove_all(store_dir, ec);
  return (all_equal && inc_equal && incremental) ? 0 : 1;
}
