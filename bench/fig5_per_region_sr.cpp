// Figure 5: fault-injection success rate per code-region instance at
// iteration 0, for faults on internal vs input locations, over CG, MG,
// KMEANS, IS and LULESH.
//
// Paper shape to check: cg_b/cg_c stand out within CG; MG regions are
// uniformly high; is_b is boosted by the shift pattern; KMEANS input faults
// on k_a/k_b are crash-prone while k_c/k_d tolerate; LULESH is the lowest,
// crash-dominated.
//
// One declarative request covers the whole figure: every region campaign of
// every app is scheduled as a single batched work queue, so regions and
// apps execute concurrently on the shared pool (pass --legacy for the old
// serialized-per-region schedule; scripts/bench_smoke.sh A/Bs the two).
// Extra flags: --apps=CG,MG,...   restrict the app set (smoke runs use CG).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  const util::Cli cli(argc, argv);
  bench::print_header("Fig. 5 - per-code-region success rates (iteration 0)",
                      cfg);

  std::vector<std::string> names = {"CG", "MG", "KMEANS", "IS", "LULESH"};
  if (const auto filter = cli.get("apps", ""); !filter.empty()) {
    names.clear();
    std::size_t begin = 0;
    while (begin <= filter.size()) {
      const auto comma = filter.find(',', begin);
      const auto end = comma == std::string::npos ? filter.size() : comma;
      if (end > begin) names.push_back(filter.substr(begin, end - begin));
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
  }

  core::AnalysisRequest request;
  for (const auto& name : names) request.app(name);
  const auto report =
      core::run_analysis(request.analysis_regions()
                             .target(fault::TargetClass::Internal)
                             .target(fault::TargetClass::Input)
                             .success_rates(cfg.campaign(100))
                             .execution(cfg.mode()));

  util::Table table({"app", "region", "SR internal", "SR input",
                     "crash internal", "crash input", "pop (bits)"});
  for (const auto& e : report.entries) {
    if (e.target != fault::TargetClass::Internal || !e.region_found) continue;
    const auto* input = report.find(e.app, e.region_name,
                                    fault::TargetClass::Input, e.instance);
    const auto& internal = e.campaign;
    const auto crash_rate = [](const fault::CampaignResult& r) {
      return r.trials ? static_cast<double>(r.crashed) /
                            static_cast<double>(r.trials)
                      : 0.0;
    };
    table.add_row(
        {e.app, e.region_name, util::Table::num(internal.success_rate(), 3),
         util::Table::num(input ? input->campaign.success_rate() : 0.0, 3),
         util::Table::num(crash_rate(internal), 3),
         util::Table::num(input ? crash_rate(input->campaign) : 0.0, 3),
         std::to_string(internal.population_bits)});
  }
  table.print(std::cout);
  bench::print_report_meta(report);
  return 0;
}
