// Figure 5: fault-injection success rate per code-region instance at
// iteration 0, for faults on internal vs input locations, over CG, MG,
// KMEANS, IS and LULESH.
//
// Paper shape to check: cg_b/cg_c stand out within CG; MG regions are
// uniformly high; is_b is boosted by the shift pattern; KMEANS input faults
// on k_a/k_b are crash-prone while k_c/k_d tolerate; LULESH is the lowest,
// crash-dominated.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  bench::print_header("Fig. 5 - per-code-region success rates (iteration 0)",
                      cfg);

  util::Table table({"app", "region", "SR internal", "SR input",
                     "crash internal", "crash input", "pop (bits)"});
  for (const std::string name : {"CG", "MG", "KMEANS", "IS", "LULESH"}) {
    core::FlipTracker tracker(apps::build_app(name));
    for (const auto& rd : tracker.app().analysis_regions) {
      const auto sites = tracker.enumerate_region_sites(rd.id, 0);
      if (!sites.region_found) continue;
      const auto internal = fault::run_campaign(
          tracker.app().module, sites, fault::TargetClass::Internal,
          tracker.golden().outputs, tracker.app().verifier,
          tracker.app().base, cfg.campaign(100));
      const auto input = fault::run_campaign(
          tracker.app().module, sites, fault::TargetClass::Input,
          tracker.golden().outputs, tracker.app().verifier,
          tracker.app().base, cfg.campaign(100));
      table.add_row(
          {name, rd.name, util::Table::num(internal.success_rate(), 3),
           util::Table::num(input.success_rate(), 3),
           util::Table::num(
               internal.trials
                   ? double(internal.crashed) / double(internal.trials)
                   : 0.0,
               3),
           util::Table::num(
               input.trials ? double(input.crashed) / double(input.trials)
                            : 0.0,
               3),
           std::to_string(sites.sites.internal_bits())});
    }
  }
  table.print(std::cout);
  return 0;
}
