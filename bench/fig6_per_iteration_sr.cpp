// Figure 6: success rate per iteration of the main loop — the whole main
// loop treated as one code region, each iteration one instance.
//
// Paper shape: iteration-to-iteration success rates are similar for MG
// (internal) and CG; IS and LULESH can vary with control flow differences.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  bench::print_header("Fig. 6 - per-iteration success rates of the main loop",
                      cfg);

  util::Table table({"app", "iteration", "SR internal", "SR input"});
  for (const std::string name : {"CG", "MG", "KMEANS", "IS", "LULESH"}) {
    core::FlipTracker tracker(apps::build_app(name));
    const auto main_region = tracker.app().main_region;
    const int iters = tracker.app().main_iters;
    for (int it = 0; it < iters; ++it) {
      const auto sites = tracker.enumerate_region_sites(
          main_region, static_cast<std::uint32_t>(it));
      if (!sites.region_found) continue;
      const auto internal = fault::run_campaign(
          tracker.app().module, sites, fault::TargetClass::Internal,
          tracker.golden().outputs, tracker.app().verifier,
          tracker.app().base, cfg.campaign(60));
      const auto input = fault::run_campaign(
          tracker.app().module, sites, fault::TargetClass::Input,
          tracker.golden().outputs, tracker.app().verifier,
          tracker.app().base, cfg.campaign(60));
      table.add_row({name, std::to_string(it + 1),
                     util::Table::num(internal.success_rate(), 3),
                     util::Table::num(input.success_rate(), 3)});
    }
  }
  table.print(std::cout);
  return 0;
}
