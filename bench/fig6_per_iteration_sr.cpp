// Figure 6: success rate per iteration of the main loop — the whole main
// loop treated as one code region, each iteration one instance.
//
// Paper shape: iteration-to-iteration success rates are similar for MG
// (internal) and CG; IS and LULESH can vary with control flow differences.
//
// Expressed as one main_loop_iterations() request: every (app, iteration,
// target) campaign lands on the same batched work queue.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  bench::print_header("Fig. 6 - per-iteration success rates of the main loop",
                      cfg);

  const auto report =
      core::run_analysis(core::AnalysisRequest()
                             .app("CG")
                             .app("MG")
                             .app("KMEANS")
                             .app("IS")
                             .app("LULESH")
                             .main_loop_iterations()
                             .target(fault::TargetClass::Internal)
                             .target(fault::TargetClass::Input)
                             .success_rates(cfg.campaign(60))
                             .execution(cfg.mode()));

  util::Table table({"app", "iteration", "SR internal", "SR input"});
  for (const auto& e : report.entries) {
    if (e.target != fault::TargetClass::Internal || !e.region_found) continue;
    const auto* input = report.find(e.app, e.region_name,
                                    fault::TargetClass::Input, e.instance);
    table.add_row({e.app, std::to_string(e.instance + 1),
                   util::Table::num(e.campaign.success_rate(), 3),
                   util::Table::num(
                       input ? input->campaign.success_rate() : 0.0, 3)});
  }
  table.print(std::cout);
  bench::print_report_meta(report);
  return 0;
}
