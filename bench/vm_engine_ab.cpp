// Engine A/B: the decoded execution engine (vm/decode.h, the engine every
// campaign trial runs on since the pre-decoded-execution refactor) against
// the legacy tree-walking interpreter it replaced, on the CG whole-program
// campaign. Reports instructions/sec for both engines and the speedup;
// scripts/bench_smoke.sh gates on the decoded engine staying >= 2x.
//
// Both engines execute the SAME prepared plans against the SAME golden
// outputs, so the outcome counts must agree exactly — the bench checks
// that too (a free end-to-end equivalence canary at campaign scale).
//
//   vm_engine_ab [--trials=N] [--seed=N] [--reps=N]
#include "bench_common.h"
#include "vm/decode.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  const util::Cli cli(argc, argv);
  const auto reps = static_cast<int>(cli.get_int("reps", 3));
  bench::print_header("engine A/B - decoded vs legacy interpreter (CG)", cfg);

  core::AnalysisSession session(apps::build_cg());
  const auto& spec = session.app();
  const auto sites = session.whole_program_sites();
  const auto golden = session.golden();
  // From-scratch trials on BOTH sides: this bench isolates the interpreter
  // engines, so the snapshot-forked scheduler (its own A/B lives in
  // campaign_fork_ab) must not shorten the decoded side's trials.
  auto campaign_cfg = cfg.campaign(40);
  campaign_cfg.fork.enabled = false;
  // The session auto-wires the native JIT into its base options; this bench
  // isolates the two INTERPRETERS, so strip it (the JIT's own A/B lives in
  // jit_engine_ab).
  auto base = spec.base;
  base.jit = nullptr;
  const auto prepared = fault::prepare_campaign(
      *sites, fault::TargetClass::Internal, base, campaign_cfg);
  auto& pool = util::default_executor();
  std::printf("campaign: %zu trials over %llu population bits, %zu workers\n",
              prepared.plans.size(),
              static_cast<unsigned long long>(prepared.population_bits),
              pool.size());

  struct Measured {
    double seconds = 1e30;
    fault::CampaignResult result;
  };
  const auto measure_once = [&](auto&& run_once, Measured& best) {
    const util::Stopwatch sw;
    auto result = run_once();
    const double s = sw.seconds();
    if (s < best.seconds) best = {s, std::move(result)};
  };

  // Interleave the engines rep by rep so a transient load spike on the host
  // penalizes both sides instead of biasing one best-of.
  Measured legacy, decoded;
  for (int r = 0; r < reps; ++r) {
    measure_once(
        [&] {
          return fault::run_prepared_campaign(spec.module, prepared,
                                              golden->outputs, spec.verifier,
                                              pool);
        },
        legacy);
    measure_once(
        [&] {
          return fault::run_prepared_campaign(*session.program(), prepared,
                                              golden->outputs, spec.verifier,
                                              pool);
        },
        decoded);
  }

  const auto mips = [](const Measured& m) {
    return static_cast<double>(m.result.instructions_retired) / m.seconds / 1e6;
  };
  std::printf("legacy : %8.1f ms  %12llu instr  %8.1f M instr/s\n",
              legacy.seconds * 1e3,
              static_cast<unsigned long long>(
                  legacy.result.instructions_retired),
              mips(legacy));
  std::printf("decoded: %8.1f ms  %12llu instr  %8.1f M instr/s\n",
              decoded.seconds * 1e3,
              static_cast<unsigned long long>(
                  decoded.result.instructions_retired),
              mips(decoded));
  std::printf("engine speedup: %.2fx\n", mips(decoded) / mips(legacy));

  const bool counts_match =
      legacy.result.success == decoded.result.success &&
      legacy.result.failed == decoded.result.failed &&
      legacy.result.crashed == decoded.result.crashed &&
      legacy.result.instructions_retired ==
          decoded.result.instructions_retired;
  std::printf("outcome counts: %s (success %zu, failed %zu, crashed %zu)\n",
              counts_match ? "identical" : "MISMATCH",
              decoded.result.success, decoded.result.failed,
              decoded.result.crashed);
  return counts_match ? 0 : 1;
}
