// Scheduler A/B on an imbalanced multi-request mix: three concurrent
// clients — a CG whole-app campaign (light), a LULESH-RANKED cross-rank
// campaign (heavy), and an MG compositional campaign (medium) — run against
// the legacy single-queue ThreadPool and against the work-stealing
// Scheduler (util/scheduler.h) at the same worker count. The mix is exactly
// the shape the single FIFO queue handles worst: one long request convoys
// the short ones behind its coarse chunks, while the work-stealing deques
// interleave all three and fine-grained chunk claiming keeps the tail
// balanced. scripts/bench_smoke.sh gates the speedup (>= 1.3x on multi-core
// hosts; reported as skipped on boxes with < 4 cores, where wall clock
// equals total CPU work for every scheduler).
//
// Outcome counts must be IDENTICAL between both executors and the
// CampaignService leg — plans are drawn per unit from the seeds, never from
// the schedule — and the bench exits nonzero on any mismatch. The third leg
// routes the same mix through core::CampaignService to cover the async
// front end end-to-end (admission, shared sessions, single-flight store
// semantics are exercised by tests/service_test.cpp; here the service must
// simply reproduce the same counts while multiplexing the mix).
//
//   sched_service_ab [--trials=N] [--seed=N] [--workers=N]
#include <cstdlib>
#include <thread>

#include "bench_common.h"
#include "core/service.h"
#include "util/scheduler.h"

namespace {

using namespace ft;

struct MixReports {
  core::AnalysisReport cg;
  core::AnalysisReport lulesh;
  core::AnalysisReport mg;
  double wall_ms = 0.0;
};

struct MixConfigs {
  fault::CampaignConfig cg;
  fault::RankCampaignConfig rank;
  fault::CampaignConfig mg;
};

core::AnalysisRequest cg_request(const MixConfigs& mix) {
  return core::AnalysisRequest().app("CG").app_campaign(mix.cg);
}
core::AnalysisRequest lulesh_request(const MixConfigs& mix) {
  return core::AnalysisRequest().app("LULESH-RANKED").rank_campaign(mix.rank);
}
core::AnalysisRequest mg_request(const MixConfigs& mix) {
  return core::AnalysisRequest().app("MG").compositional(mix.mg);
}

/// The three clients as three concurrent threads sharing one executor —
/// the service front end's admission pattern, minus the service.
MixReports run_mix(util::Executor& exec, const MixConfigs& mix) {
  MixReports out;
  util::Stopwatch sw;
  std::thread t_cg(
      [&] { out.cg = core::run_analysis(cg_request(mix).pool(&exec)); });
  std::thread t_lu([&] {
    out.lulesh = core::run_analysis(lulesh_request(mix).pool(&exec));
  });
  std::thread t_mg(
      [&] { out.mg = core::run_analysis(mg_request(mix).pool(&exec)); });
  t_cg.join();
  t_lu.join();
  t_mg.join();
  out.wall_ms = sw.millis();
  return out;
}

bool same_counts(const fault::CampaignResult& a,
                 const fault::CampaignResult& b) {
  return a.trials == b.trials && a.success == b.success &&
         a.failed == b.failed && a.crashed == b.crashed &&
         a.detected_recovered == b.detected_recovered &&
         a.detected_unrecoverable == b.detected_unrecoverable &&
         a.population_bits == b.population_bits;
}

bool same_rank_counts(const fault::RankCampaignResult& a,
                      const fault::RankCampaignResult& b) {
  return a.trials == b.trials && a.masked_locally == b.masked_locally &&
         a.absorbed_by_collective == b.absorbed_by_collective &&
         a.propagated == b.propagated &&
         a.corrupted_output == b.corrupted_output && a.trapped == b.trapped &&
         a.population_bits == b.population_bits;
}

bool same_mix(const MixReports& a, const MixReports& b, const char* what) {
  const bool ok =
      same_counts(*a.cg.find_app("CG")->whole_app,
                  *b.cg.find_app("CG")->whole_app) &&
      same_rank_counts(*a.lulesh.find_app("LULESH-RANKED")->rank_campaign,
                       *b.lulesh.find_app("LULESH-RANKED")->rank_campaign) &&
      same_counts(a.mg.find_app("MG")->compositional->counts,
                  b.mg.find_app("MG")->compositional->counts);
  if (!ok) std::printf("COUNT MISMATCH: %s\n", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  const util::Cli cli(argc, argv);
  bench::print_header("scheduler A/B - work stealing vs single queue", cfg);

  const unsigned cores = std::thread::hardware_concurrency();
  const auto workers = static_cast<std::size_t>(
      cli.get_int("workers", static_cast<long>(std::max(4u, cores))));

  MixConfigs mix;
  mix.cg = cfg.campaign(48);
  mix.cg.seed = cfg.seed;
  mix.rank.nranks = 4;
  mix.rank.trials = cfg.trials != 0 ? cfg.trials : (cfg.full ? 0 : 12);
  mix.rank.seed = cfg.seed;
  mix.mg = cfg.campaign(32);
  mix.mg.seed = cfg.seed;

  std::printf("mix: CG app campaign + LULESH-RANKED rank campaign (4 ranks) "
              "+ MG compositional, 3 concurrent clients, %zu workers\n\n",
              workers);

  // Alternate legs to keep cache/frequency effects symmetric; best-of.
  double legacy_ms = 1e30;
  double sched_ms = 1e30;
  MixReports legacy_mix;
  MixReports sched_mix;
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      util::ThreadPool pool(workers);
      auto r = run_mix(pool, mix);
      if (rep > 0 && !same_mix(r, legacy_mix, "legacy across reps")) return 1;
      if (r.wall_ms < legacy_ms) legacy_ms = r.wall_ms;
      legacy_mix = std::move(r);
    }
    {
      util::Scheduler sched(workers);
      auto r = run_mix(sched, mix);
      if (rep > 0 && !same_mix(r, sched_mix, "scheduler across reps")) {
        return 1;
      }
      if (r.wall_ms < sched_ms) sched_ms = r.wall_ms;
      sched_mix = std::move(r);
      std::printf("rep %d: legacy %.1f ms, work-stealing %.1f ms "
                  "(%llu steals, max queue depth %llu)\n",
                  rep, legacy_mix.wall_ms, r.wall_ms,
                  static_cast<unsigned long long>(sched.steals()),
                  static_cast<unsigned long long>(sched.queue_depth_max()));
    }
  }
  if (!same_mix(sched_mix, legacy_mix, "scheduler vs legacy")) return 1;

  // Third leg: the same mix through the async service front end. Counts
  // must again be identical; the stats line shows the multiplexing.
  {
    util::Scheduler sched(workers);
    core::ServiceOptions opts;
    opts.scheduler = &sched;
    core::CampaignService service(opts);
    MixReports r;
    util::Stopwatch sw;
    auto f_cg = service.submit(cg_request(mix));
    auto f_lu = service.submit(lulesh_request(mix));
    auto f_mg = service.submit(mg_request(mix));
    r.cg = f_cg.get();
    r.lulesh = f_lu.get();
    r.mg = f_mg.get();
    r.wall_ms = sw.millis();
    if (!same_mix(r, legacy_mix, "service vs legacy")) return 1;
    const auto st = service.stats();
    std::printf("\nservice leg: %.1f ms, %llu requests admitted, "
                "%llu sessions built\n",
                r.wall_ms, static_cast<unsigned long long>(st.requests_admitted),
                static_cast<unsigned long long>(st.sessions_created));
  }

  std::printf("\nsched A/B: legacy pool %.1f ms, work-stealing %.1f ms\n",
              legacy_ms, sched_ms);
  std::printf("counts: identical across legacy, work-stealing and service\n");
  if (cores < 4) {
    // One busy core serializes every schedule: wall clock equals total CPU
    // work and the comparison measures nothing. The CI runners gate it.
    std::printf("sched speedup: skipped (single-core host)\n");
  } else {
    std::printf("sched speedup: %.2fx\n", legacy_ms / sched_ms);
  }
  return 0;
}
