// Trace-substrate A/B: columnar direct-emit traced execution (ColumnTrace
// sink fed by the decoded hot loop) against the DynInstr-observer baseline
// (TraceCollector behind the virtual ExecObserver hook), on repeated full
// traced runs of the CG golden workload.
//
// Reports instructions/sec for both substrates, the resident bytes/record
// of each, and verifies end-to-end analysis equivalence: identical ACL
// series/events and pattern counts for one injection analyzed on both
// substrates. scripts/bench_smoke.sh gates on the columnar path staying
// >= 2x the observer baseline and >= 3x smaller per record; the binary
// exits nonzero if the equivalence check fails.
//
//   trace_substrate_ab [--reps=N] [--app=NAME]
#include "acl/table.h"
#include "bench_common.h"
#include "patterns/detect.h"
#include "trace/collector.h"
#include "trace/column.h"
#include "vm/decode.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  const util::Cli cli(argc, argv);
  const auto reps = static_cast<int>(cli.get_int("reps", 5));
  const auto name = cli.get("app", "CG");
  bench::print_header("trace substrate A/B - columnar vs DynInstr observer",
                      cfg);

  const auto app = apps::build_app(name);
  const auto prog = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(app.module));

  struct Measured {
    double seconds = 1e30;
    std::uint64_t instructions = 0;
    std::size_t records = 0;
    double bytes_per_record = 0.0;
  };

  const auto run_observer = [&](Measured& best) {
    trace::TraceCollector sink;
    vm::VmOptions opts = app.base;
    opts.program = prog.get();
    opts.observer = &sink;
    const util::Stopwatch sw;
    const auto r = vm::Vm::run(app.module, opts);
    const double s = sw.seconds();
    if (s < best.seconds) {
      best.seconds = s;
      best.instructions = r.instructions;
      best.records = sink.trace().size();
      best.bytes_per_record = static_cast<double>(sizeof(vm::DynInstr));
    }
  };
  const auto run_columnar = [&](Measured& best) {
    trace::ColumnTrace sink(prog);
    vm::VmOptions opts = app.base;
    opts.program = prog.get();
    opts.column_sink = &sink;
    const util::Stopwatch sw;
    const auto r = vm::Vm::run(app.module, opts);
    const double s = sw.seconds();
    if (s < best.seconds) {
      best.seconds = s;
      best.instructions = r.instructions;
      best.records = sink.size();
      best.bytes_per_record = sink.bytes_per_record();
    }
  };

  // Interleave rep by rep so a host load spike penalizes both substrates.
  Measured observer, columnar;
  for (int rep = 0; rep < reps; ++rep) {
    run_observer(observer);
    run_columnar(columnar);
  }

  const auto mips = [](const Measured& m) {
    return static_cast<double>(m.instructions) / m.seconds / 1e6;
  };
  std::printf("workload: %s, %zu records per traced run, %d reps (best-of)\n",
              name.c_str(), columnar.records, reps);
  std::printf("observer : %8.1f ms  %8.1f M instr/s  %6.1f bytes/record\n",
              observer.seconds * 1e3, mips(observer),
              observer.bytes_per_record);
  std::printf("columnar : %8.1f ms  %8.1f M instr/s  %6.1f bytes/record\n",
              columnar.seconds * 1e3, mips(columnar),
              columnar.bytes_per_record);
  std::printf("trace speedup: %.2fx\n", mips(columnar) / mips(observer));
  std::printf("bytes/record ratio: %.2fx smaller\n",
              observer.bytes_per_record / columnar.bytes_per_record);

  // --- end-to-end equivalence: same injection, both substrates -------------
  acl::DiffOptions dopts;
  dopts.base = app.base;
  dopts.fault = vm::FaultPlan::result_bit(20000, 33);
  // Apples-to-apples timing: both substrates get the same reserve hint
  // (the golden record count, what AnalysisSession passes), so neither
  // side pays reallocation churn the other avoided.
  dopts.reserve_records = columnar.records;
  const util::Stopwatch legacy_sw;
  const auto legacy_diff = acl::diff_run(*prog, dopts);
  const double legacy_diff_ms = legacy_sw.millis();
  const util::Stopwatch col_sw;
  const auto col_diff = acl::diff_run_columnar(prog, dopts);
  const double col_diff_ms = col_sw.millis();
  std::printf("diff wall (reserved %zu records): legacy %.1f ms, "
              "columnar %.1f ms\n",
              dopts.reserve_records, legacy_diff_ms, col_diff_ms);

  const auto legacy_events = trace::LocationEvents::build(
      std::span<const vm::DynInstr>(legacy_diff.faulty.records.data(),
                                    legacy_diff.usable_records()));
  const auto col_events = trace::LocationEvents::build(col_diff.records());
  const auto legacy_acl = acl::build_acl(legacy_diff, legacy_events);
  const auto col_acl = acl::build_acl(col_diff, col_events);
  const auto legacy_patterns =
      patterns::detect_patterns(legacy_diff, legacy_events);
  const auto col_patterns = patterns::detect_patterns(col_diff, col_events);

  bool events_equal = legacy_acl.events.size() == col_acl.events.size();
  for (std::size_t i = 0; events_equal && i < legacy_acl.events.size(); ++i) {
    const auto& a = legacy_acl.events[i];
    const auto& b = col_acl.events[i];
    events_equal = a.index == b.index && a.loc == b.loc && a.kind == b.kind &&
                   a.faulty_bits == b.faulty_bits &&
                   a.clean_bits == b.clean_bits;
  }
  const bool identical = events_equal && legacy_acl.count == col_acl.count &&
                         legacy_patterns.counts == col_patterns.counts;
  std::printf("acl equivalence: %s (%zu events, %zu series points, "
              "pattern counts %s)\n",
              identical ? "identical" : "MISMATCH", col_acl.events.size(),
              col_acl.count.size(),
              legacy_patterns.counts == col_patterns.counts ? "equal"
                                                            : "DIFFER");
  return identical ? 0 : 1;
}
