// Automatic-hardening A/B: the campaign-guided transform pass against the
// hand-built CG variant of §VII (apps::build_cg_hardened, the paper's
// source-level patterns written by hand).
//
// The A side runs core::run_hardening on CG: a baseline per-region campaign
// guides the pass, the pass inserts DWC + ABFT detectors, and a re-campaign
// of the emitted module (with checkpoint/rollback recovery enabled) measures
// detection coverage against static instruction overhead per region. The B
// side campaigns the hand-built variant for a reference point — it has no
// detectors, so its metric is the plain success rate.
//
// Gates (the binary exits nonzero; scripts/bench_smoke.sh section 8 fails
// under pipefail):
//   - every protected region's effective success rate (verified + recovered)
//     must be >= its baseline success rate minus sampling noise;
//   - the aggregate static overhead across protected regions (total added /
//     total original instructions) must stay <= 2x — per-region multipliers
//     on ten-instruction regions are reported but not gated;
//   - at least one trial must have been detected-and-recovered (the
//     rollback path actually exercised, not just compiled).
//
//   harden_ab [--trials=N] [--seed=N]
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "harden/harden.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  bench::print_header("hardening A/B - transform pass vs hand-built CG", cfg);

  auto camp = cfg.campaign(60);
  camp.recovery.enabled = true;

  // --- A: campaign-guided pass ---------------------------------------------
  harden::HardenConfig hc;
  // The throttle keeps the duplicated-site count proportional to region
  // size; without it DWC alone can triple a tight loop body.
  hc.max_dwc_per_region = 8;
  hc.dwc_loads = false;

  util::Stopwatch sw;
  const auto report = core::AnalysisRequest()
                          .app("CG")
                          .analysis_regions()
                          .target(fault::TargetClass::Internal)
                          .success_rates(camp)
                          .app_campaign(camp)
                          .harden(hc);
  const double auto_s = sw.seconds();

  util::Table t({"region", "baseline SR", "hardened SR", "detection", "dwc",
                 "abft", "overhead"});
  bool coverage_ok = true;
  double worst_overhead = 1.0;
  std::size_t total_original = 0;
  std::size_t total_added = 0;
  for (const auto& app : report.apps) {
    for (const auto& r : app.regions) {
      t.add_row({r.region_name, util::Table::num(r.baseline_success_rate, 3),
                 util::Table::num(r.hardened_success_rate, 3),
                 util::Table::num(r.detection_rate, 3),
                 std::to_string(r.dwc_sites), std::to_string(r.abft_cells),
                 util::Table::num(r.overhead(), 2) + "x"});
      // Sampling-noise allowance: two campaigns of N trials each have a
      // combined standard error of about sqrt(2 * p(1-p) / N); three
      // sigmas of that at p=0.5 bounds the gate.
      const double n = static_cast<double>(camp.trials == 0 ? 60 : camp.trials);
      const double noise = 3.0 * std::sqrt(0.5 / n);
      if (r.hardened_success_rate + noise < r.baseline_success_rate) {
        coverage_ok = false;
      }
      worst_overhead = std::max(worst_overhead, r.overhead());
      total_original += r.original_instructions;
      total_added += r.added_instructions;
    }
  }
  t.print(std::cout);
  const double aggregate_overhead =
      total_original == 0 ? 1.0
                          : 1.0 + static_cast<double>(total_added) /
                                      static_cast<double>(total_original);
  const bool overhead_ok = aggregate_overhead <= 2.0;

  std::size_t recovered = 0;
  std::size_t detected = 0;
  for (const auto& e : report.hardened.entries) {
    recovered += e.campaign.detected_recovered;
    detected += e.campaign.detected_recovered + e.campaign.detected_unrecoverable;
  }
  const auto* base_app = report.baseline.find_app("CG");
  const auto* hard_app = report.hardened.find_app("CG");
  const double base_sr =
      base_app && base_app->whole_app ? base_app->whole_app->success_rate()
                                      : 0.0;
  const double hard_sr = hard_app && hard_app->whole_app
                             ? hard_app->whole_app->effective_success_rate()
                             : 0.0;
  if (hard_app && hard_app->whole_app) {
    recovered += hard_app->whole_app->detected_recovered;
    detected += hard_app->whole_app->detected_recovered +
                hard_app->whole_app->detected_unrecoverable;
  }

  // --- B: hand-built variant ------------------------------------------------
  sw.reset();
  auto hand = apps::build_cg_hardened({true, true});
  hand.name = "CG-hand";
  const auto hand_report = core::run_analysis(
      core::AnalysisRequest().app(std::move(hand)).app_campaign(camp));
  const double hand_s = sw.seconds();
  const auto* hand_app = hand_report.find_app("CG-hand");
  const double hand_sr = hand_app && hand_app->whole_app
                             ? hand_app->whole_app->success_rate()
                             : 0.0;

  std::printf("\nwhole-app SR: baseline %.3f | pass-hardened %.3f "
              "(effective, %.3f detection) | hand-built %.3f\n",
              base_sr, hard_sr,
              hard_app && hard_app->whole_app
                  ? hard_app->whole_app->detection_rate()
                  : 0.0,
              hand_sr);
  std::printf("detected trials: %zu (%zu recovered via rollback)\n", detected,
              recovered);
  std::printf("wall: pass pipeline %.1f ms | hand-built campaign %.1f ms\n",
              auto_s * 1e3, hand_s * 1e3);
  std::printf("aggregate overhead: %.2fx (%zu added / %zu original static "
              "instructions; worst region %.2fx)\n",
              aggregate_overhead, total_added, total_original, worst_overhead);

  const bool recovery_ok = recovered > 0;
  std::printf("harden gates: coverage %s, overhead %s, recovery %s\n",
              coverage_ok ? "OK" : "REGRESSION",
              overhead_ok ? "OK" : "REGRESSION",
              recovery_ok ? "OK" : "INACTIVE");
  return coverage_ok && overhead_ok && recovery_ok ? 0 : 1;
}
