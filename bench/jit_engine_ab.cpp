// Engine A/B/C: the template JIT (jit/jit_program.h, the native backend
// untraced runs execute on since the JIT PR) against the decoded
// interpreter and the legacy tree-walker, on the CG whole-program campaign
// with the snapshot-forked scheduler disabled — every trial runs from
// scratch, so the measurement isolates raw engine throughput. Reports
// instructions/sec for all three engines; scripts/bench_smoke.sh gates on
// the JIT staying >= 3x over the decoded interpreter.
//
// All engines execute the SAME prepared plans against the SAME golden
// outputs, so the outcome counts must agree exactly — the bench enforces
// that with a nonzero exit (an end-to-end equivalence canary at campaign
// scale, on top of the differential fuzzer's per-program pinning).
//
//   jit_engine_ab [--trials=N] [--seed=N] [--reps=N]
#include "bench_common.h"
#include "jit/jit_program.h"
#include "vm/decode.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  const util::Cli cli(argc, argv);
  const auto reps = static_cast<int>(cli.get_int("reps", 3));
  bench::print_header("engine A/B/C - jit vs decoded vs legacy (CG)", cfg);

  if (!jit::JitProgram::runtime_enabled()) {
    // Non-x86-64 target or FT_VM_NO_JIT: nothing to measure, but the bench
    // must not fail the smoke harness on platforms without a backend.
    std::printf("jit backend unavailable; skipping\n");
    std::printf("jit speedup: skipped\n");
    return 0;
  }

  core::AnalysisSession session(apps::build_cg());
  const auto& spec = session.app();
  const auto sites = session.whole_program_sites();
  const auto golden = session.golden();
  auto campaign_cfg = cfg.campaign(40);
  campaign_cfg.fork.enabled = false;  // from-scratch trials on every engine

  // One prepared campaign per engine, differing ONLY in the jit pointer
  // (the session wires it into spec.base; the interpreter sides strip it).
  auto interp_base = spec.base;
  interp_base.jit = nullptr;
  const auto interp_prep = fault::prepare_campaign(
      *sites, fault::TargetClass::Internal, interp_base, campaign_cfg);
  const auto jit_prep = fault::prepare_campaign(
      *sites, fault::TargetClass::Internal, spec.base, campaign_cfg);

  auto& pool = util::default_executor();
  std::printf("campaign: %zu trials over %llu population bits, %zu workers\n",
              interp_prep.plans.size(),
              static_cast<unsigned long long>(interp_prep.population_bits),
              pool.size());
  const auto& st = session.jit()->stats();
  std::printf("jit: %u/%u instructions compiled, %zu code bytes\n",
              st.compiled, st.compiled + st.deopt, st.code_bytes);

  struct Measured {
    double seconds = 1e30;
    fault::CampaignResult result;
  };
  const auto measure_once = [&](auto&& run_once, Measured& best) {
    const util::Stopwatch sw;
    auto result = run_once();
    const double s = sw.seconds();
    if (s < best.seconds) best = {s, std::move(result)};
  };

  // Interleave the engines rep by rep so a transient load spike on the host
  // penalizes all sides instead of biasing one best-of.
  Measured legacy, decoded, jitted;
  for (int r = 0; r < reps; ++r) {
    measure_once(
        [&] {
          return fault::run_prepared_campaign(spec.module, interp_prep,
                                              golden->outputs, spec.verifier,
                                              pool);
        },
        legacy);
    measure_once(
        [&] {
          return fault::run_prepared_campaign(*session.program(), interp_prep,
                                              golden->outputs, spec.verifier,
                                              pool);
        },
        decoded);
    measure_once(
        [&] {
          return fault::run_prepared_campaign(*session.program(), jit_prep,
                                              golden->outputs, spec.verifier,
                                              pool);
        },
        jitted);
  }

  const auto mips = [](const Measured& m) {
    return static_cast<double>(m.result.instructions_retired) / m.seconds / 1e6;
  };
  const auto row = [&](const char* name, const Measured& m) {
    std::printf("%-7s: %8.1f ms  %12llu instr  %8.1f M instr/s\n", name,
                m.seconds * 1e3,
                static_cast<unsigned long long>(m.result.instructions_retired),
                mips(m));
  };
  row("legacy", legacy);
  row("decoded", decoded);
  row("jit", jitted);
  std::printf("jit vs legacy: %.2fx\n", mips(jitted) / mips(legacy));
  std::printf("jit speedup: %.2fx\n", mips(jitted) / mips(decoded));

  const auto same = [](const fault::CampaignResult& a,
                       const fault::CampaignResult& b) {
    return a.success == b.success && a.failed == b.failed &&
           a.crashed == b.crashed &&
           a.instructions_retired == b.instructions_retired;
  };
  const bool counts_match =
      same(legacy.result, decoded.result) && same(decoded.result, jitted.result);
  std::printf("outcome counts: %s (success %zu, failed %zu, crashed %zu)\n",
              counts_match ? "identical" : "MISMATCH", jitted.result.success,
              jitted.result.failed, jitted.result.crashed);
  return counts_match ? 0 : 1;
}
