// Persistent-store A/B: cold vs warm run_analysis on the same request.
//
// The cold run starts from an empty artifact store and computes everything
// — golden run, columnar trace, site enumerations, every campaign — while
// publishing each artifact as it is produced. The warm run replays the
// IDENTICAL request against the now-populated store: the golden result and
// trace come back via zero-copy mmap, the enumerations and campaign
// outcome counts via content-addressed blobs, and nothing is re-executed.
// The report's proof counters make "nothing" checkable, not vibes:
// trials_executed == 0 and golden_traced_instructions == 0 on the warm
// side, with identical outcome counts on both sides. The binary exits
// nonzero if the warm run executed any work or any count diverges;
// scripts/bench_smoke.sh section 6 gates on warm wall-clock >= 5x faster.
//
//   store_warm_ab [--trials=N] [--seed=N] [--app=NAME] [--reps=N]
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "store/artifact_store.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  const util::Cli cli(argc, argv);
  const auto name = cli.get("app", "CG");
  const auto reps = static_cast<int>(cli.get_int("reps", 3));
  bench::print_header("store A/B - cold compute vs warm artifact replay",
                      cfg);

  // Build the app once outside the measured region; both sides pay only
  // decode + analysis, which is exactly what the store can or cannot skip.
  const auto spec = apps::build_app(name);
  std::string store_dir;
  {
    std::string templ =
        (std::filesystem::temp_directory_path() / "ft_warm_ab_XXXXXX")
            .string();
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }
    store_dir = buf.data();
  }
  const auto request = [&] {
    return core::AnalysisRequest()
        .app(spec)
        .analysis_regions()
        .target(fault::TargetClass::Internal)
        .target(fault::TargetClass::Input)
        .success_rates(cfg.campaign(60))
        .app_campaign(cfg.campaign(40))
        .execution(cfg.mode())
        .store_dir(store_dir + "/store");
  };

  util::Stopwatch sw;
  const auto cold = core::run_analysis(request());
  const double cold_s = sw.seconds();

  // Best-of-reps for the warm side: it is fast enough that a scheduler
  // hiccup would otherwise dominate the ratio.
  double warm_s = 1e30;
  core::AnalysisReport warm;
  for (int r = 0; r < reps; ++r) {
    sw.reset();
    auto rep = core::run_analysis(request());
    const double s = sw.seconds();
    if (s < warm_s) {
      warm_s = s;
      warm = std::move(rep);
    }
  }

  std::printf("app: %s, %zu campaign units cold, %zu trials\n", name.c_str(),
              cold.campaign_units, cold.total_trials);
  std::printf("cold: %8.1f ms  (%zu trials executed, %llu traced instr, "
              "%llu store bytes written)\n",
              cold_s * 1e3, cold.trials_executed,
              static_cast<unsigned long long>(cold.golden_traced_instructions),
              static_cast<unsigned long long>(cold.store_bytes_written));
  std::printf("warm: %8.1f ms  (%zu trials executed, %llu traced instr, "
              "%zu campaigns from store, %llu hits / %llu misses)\n",
              warm_s * 1e3, warm.trials_executed,
              static_cast<unsigned long long>(warm.golden_traced_instructions),
              warm.campaigns_from_store,
              static_cast<unsigned long long>(warm.store_hits),
              static_cast<unsigned long long>(warm.store_misses));
  std::printf("warm speedup: %.2fx\n", cold_s / warm_s);

  // Identity: every outcome count the analysis reports must be
  // bit-identical between the computed and the replayed run.
  bool identical = cold.entries.size() == warm.entries.size() &&
                   cold.total_trials == warm.total_trials;
  for (std::size_t i = 0; identical && i < cold.entries.size(); ++i) {
    const auto& a = cold.entries[i].campaign;
    const auto& b = warm.entries[i].campaign;
    identical = a.trials == b.trials && a.success == b.success &&
                a.failed == b.failed && a.crashed == b.crashed &&
                a.population_bits == b.population_bits;
  }
  if (identical && cold.apps.size() == 1 && warm.apps.size() == 1 &&
      cold.apps[0].whole_app.has_value() &&
      warm.apps[0].whole_app.has_value()) {
    const auto& a = *cold.apps[0].whole_app;
    const auto& b = *warm.apps[0].whole_app;
    identical = a.trials == b.trials && a.success == b.success &&
                a.failed == b.failed && a.crashed == b.crashed;
  }
  const bool warm_idle =
      warm.trials_executed == 0 && warm.golden_traced_instructions == 0 &&
      warm.campaigns_from_store > 0 && warm.store_hits > 0;
  std::printf("identity: %s; warm executed nothing: %s\n",
              identical ? "OK" : "MISMATCH", warm_idle ? "OK" : "VIOLATED");

  const store::ArtifactStore st(store_dir + "/store");
  const auto stats = st.disk_stats();
  const auto hit_total = warm.store_hits + warm.store_misses;
  std::printf("store stats: entries=%llu bytes=%llu hit_rate=%.1f%%\n",
              static_cast<unsigned long long>(stats.entries),
              static_cast<unsigned long long>(stats.bytes),
              hit_total == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(warm.store_hits) /
                        static_cast<double>(hit_total));

  std::error_code ec;
  std::filesystem::remove_all(store_dir, ec);
  return identical && warm_idle ? 0 : 1;
}
