// Campaign-scheduler A/B: snapshot-forked trial execution (prefix reuse +
// convergence early exit, fault/campaign.h) against the from-scratch trial
// loop it replaced, on the CG whole-program campaign. Both sides run the
// SAME prepared plans on the SAME decoded engine, so the outcome counts
// must agree exactly — the binary exits nonzero on a mismatch.
//
// The A/B runs on ONE pool worker by default: the forked scheduler's win is
// per-worker trial efficiency (prefix skipped, tails cut), and a fixed
// single worker keeps the measurement stable across hosts — on N workers
// both sides scale with the pool, while the forked side's one serial golden
// pass per campaign amortizes with campaign size (pass --workers to see
// any configuration).
//
// Reports trials/sec for both schedulers and the prefix-reuse counters
// (snapshots taken, instructions saved, early exits, resume depth);
// scripts/bench_smoke.sh section 4 gates on the forked scheduler staying
// >= 2x in trial throughput.
//
//   campaign_fork_ab [--trials=N] [--seed=N] [--reps=N] [--app=NAME]
//                    [--workers=N]
#include "bench_common.h"
#include "vm/decode.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  const util::Cli cli(argc, argv);
  const auto reps = static_cast<int>(cli.get_int("reps", 3));
  const auto name = cli.get("app", "CG");
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 1));
  bench::print_header("campaign A/B - snapshot-forked vs from-scratch trials",
                      cfg);

  core::AnalysisSession session(apps::build_app(name));
  const auto& spec = session.app();
  const auto sites = session.whole_program_sites();
  const auto golden = session.golden();

  auto scratch_cfg = cfg.campaign(80);
  scratch_cfg.fork.enabled = false;
  auto forked_cfg = scratch_cfg;
  forked_cfg.fork.enabled = true;
  // Strip the session's auto-wired JIT: this bench isolates the snapshot-
  // forked scheduler against from-scratch trials on the SAME (interpreter)
  // engine, so native execution must not shorten either side.
  auto base = spec.base;
  base.jit = nullptr;
  const auto scratch_prep = fault::prepare_campaign(
      *sites, fault::TargetClass::Internal, base, scratch_cfg);
  const auto forked_prep = fault::prepare_campaign(
      *sites, fault::TargetClass::Internal, base, forked_cfg);

  util::ThreadPool pool(workers);
  std::printf("campaign: %s, %zu trials over %llu population bits, "
              "%llu golden instructions, %zu workers\n",
              name.c_str(), forked_prep.plans.size(),
              static_cast<unsigned long long>(forked_prep.population_bits),
              static_cast<unsigned long long>(
                  forked_prep.fault_free_instructions),
              pool.size());

  struct Measured {
    double seconds = 1e30;
    fault::CampaignResult result;
  };
  const auto measure_once = [&](const fault::PreparedCampaign& prep,
                                Measured& best) {
    const util::Stopwatch sw;
    auto result = fault::run_prepared_campaign(
        *session.program(), prep, golden->outputs, spec.verifier, pool);
    const double s = sw.seconds();
    if (s < best.seconds) best = {s, std::move(result)};
  };

  // Interleave the schedulers rep by rep so a transient load spike on the
  // host penalizes both sides instead of biasing one best-of.
  Measured scratch, forked;
  for (int r = 0; r < reps; ++r) {
    measure_once(scratch_prep, scratch);
    measure_once(forked_prep, forked);
  }

  const auto tps = [](const Measured& m) {
    return static_cast<double>(m.result.trials) / m.seconds;
  };
  std::printf("scratch: %8.1f ms  %8.0f trials/s  %12llu instr executed\n",
              scratch.seconds * 1e3, tps(scratch),
              static_cast<unsigned long long>(
                  scratch.result.instructions_retired));
  std::printf("forked : %8.1f ms  %8.0f trials/s  %12llu instr executed\n",
              forked.seconds * 1e3, tps(forked),
              static_cast<unsigned long long>(
                  forked.result.instructions_retired));
  std::printf(
      "prefix reuse: %llu snapshots, resume depth %llu, "
      "%llu prefix instr saved, %llu convergence instr saved, "
      "%llu early exits\n",
      static_cast<unsigned long long>(forked.result.snapshots_taken),
      static_cast<unsigned long long>(forked.result.resume_depth),
      static_cast<unsigned long long>(
          forked.result.prefix_instructions_saved),
      static_cast<unsigned long long>(
          forked.result.convergence_instructions_saved),
      static_cast<unsigned long long>(forked.result.early_exits));
  std::printf("fork speedup: %.2fx\n", tps(forked) / tps(scratch));

  const bool counts_match = scratch.result.success == forked.result.success &&
                            scratch.result.failed == forked.result.failed &&
                            scratch.result.crashed == forked.result.crashed;
  std::printf("outcome counts: %s (success %zu, failed %zu, crashed %zu)\n",
              counts_match ? "identical" : "MISMATCH", forked.result.success,
              forked.result.failed, forked.result.crashed);
  return counts_match ? 0 : 1;
}
