// google-benchmark microbenchmarks of the substrate: VM dispatch rate,
// tracing cost, region segmentation, location-event indexing, ACL sweep and
// DDDG construction throughput. These back the feasibility claims behind
// Fig. 4 (tracing is cheap enough to use at small/medium scale).
#include <benchmark/benchmark.h>

#include "acl/diff.h"
#include "acl/table.h"
#include "apps/app.h"
#include "dddg/graph.h"
#include "hl/builder.h"
#include "trace/collector.h"
#include "trace/column.h"
#include "trace/events.h"
#include "jit/jit_program.h"
#include "trace/segment.h"
#include "vm/decode.h"
#include "vm/interp.h"

namespace {

using namespace ft;

/// A ~50k-instruction compute loop.
ir::Module make_kernel() {
  hl::ProgramBuilder pb("kernel");
  auto a = pb.global_f64("a", 256);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.for_("i", 0, 256, [&](hl::Value i) {
      f.st(a, i, f.sitofp(i) * 0.5);
    });
    auto s = f.var_f64("s", 0.0);
    f.for_("r", 0, 20, [&](hl::Value) {
      f.for_("i", 0, 256, [&](hl::Value i) {
        s.set(s.get() + f.ld(a, i) * 1.0001);
      });
    });
    f.emit(s.get());
    f.ret();
  }
  return pb.finish();
}

void BM_VmDispatch(benchmark::State& state) {
  const auto mod = make_kernel();
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const auto r = vm::Vm::run(mod);
    instructions = r.instructions;
    benchmark::DoNotOptimize(r.outputs);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmDispatch);

// The decoded engine on the same kernel: flat pre-resolved stream,
// contiguous register stack, computed-goto hot loop. Compare against
// BM_VmDispatch for the raw dispatch speedup.
void BM_VmDispatchDecoded(benchmark::State& state) {
  const auto mod = make_kernel();
  const auto prog = vm::DecodedProgram::decode(mod);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const auto r = vm::Vm::run(prog);
    instructions = r.instructions;
    benchmark::DoNotOptimize(r.outputs);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmDispatchDecoded);

// The template JIT on the same kernel: untraced native execution (the
// engine campaign trials run on when a backend is available). Compare
// against BM_VmDispatchDecoded for the native-over-interpreter speedup.
void BM_VmUntracedJit(benchmark::State& state) {
  const auto mod = make_kernel();
  const auto prog = vm::DecodedProgram::decode(mod);
  const auto jit = jit::JitProgram::supported() ? jit::JitProgram::compile(prog)
                                                : nullptr;
  if (!jit) {
    state.SkipWithError("jit backend unavailable");
    return;
  }
  vm::VmOptions opts;
  opts.jit = jit.get();
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const auto r = vm::Vm::run(prog, opts);
    instructions = r.instructions;
    benchmark::DoNotOptimize(r.outputs);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmUntracedJit);

// JIT compile cost — paid once per AnalysisSession (like decode), amortized
// over every untraced run the session performs.
void BM_JitCompile(benchmark::State& state) {
  const auto app = apps::build_cg();
  const auto prog = vm::DecodedProgram::decode(app.module);
  if (!jit::JitProgram::supported()) {
    state.SkipWithError("jit backend unavailable");
    return;
  }
  std::size_t code_bytes = 0;
  for (auto _ : state) {
    auto jit = jit::JitProgram::compile(prog);
    code_bytes = jit ? jit->stats().code_bytes : 0;
    benchmark::DoNotOptimize(jit);
  }
  state.counters["code_bytes"] = static_cast<double>(code_bytes);
}
BENCHMARK(BM_JitCompile);

// Decode cost itself — paid once per AnalysisSession, amortized over
// thousands of trials.
void BM_DecodeModule(benchmark::State& state) {
  const auto app = apps::build_cg();
  for (auto _ : state) {
    auto prog = vm::DecodedProgram::decode(app.module);
    benchmark::DoNotOptimize(prog.code_size());
  }
}
BENCHMARK(BM_DecodeModule);

void BM_VmTraced(benchmark::State& state) {
  const auto mod = make_kernel();
  for (auto _ : state) {
    trace::TraceCollector c;
    vm::VmOptions opts;
    opts.observer = &c;
    const auto r = vm::Vm::run(mod, opts);
    benchmark::DoNotOptimize(c.trace().records.data());
    state.counters["records"] = static_cast<double>(r.instructions);
  }
}
BENCHMARK(BM_VmTraced);

// Direct-emit columnar tracing on the decoded engine: the traced
// counterpart of BM_VmDispatchDecoded, and the substrate every session
// analysis reads. Compare against BM_VmTraced for the traced-path speedup
// and against bytes/record for the resident-size win.
void BM_VmTracedColumnar(benchmark::State& state) {
  const auto mod = make_kernel();
  const auto prog = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(mod));
  for (auto _ : state) {
    trace::ColumnTrace c(prog);
    vm::VmOptions opts;
    opts.program = prog.get();
    opts.column_sink = &c;
    const auto r = vm::Vm::run(*prog, opts);
    benchmark::DoNotOptimize(r.instructions);
    state.counters["records"] = static_cast<double>(c.size());
    state.counters["bytes/record"] = c.bytes_per_record();
  }
}
BENCHMARK(BM_VmTracedColumnar);

void BM_RegionSegmentation(benchmark::State& state) {
  auto app = apps::build_lulesh();
  trace::TraceCollector c;
  vm::VmOptions opts = app.base;
  opts.observer = &c;
  (void)vm::Vm::run(app.module, opts);
  for (auto _ : state) {
    auto instances = trace::segment_regions(c.trace().span());
    benchmark::DoNotOptimize(instances.data());
  }
}
BENCHMARK(BM_RegionSegmentation);

void BM_LocationEvents(benchmark::State& state) {
  auto app = apps::build_lulesh();
  trace::TraceCollector c;
  vm::VmOptions opts = app.base;
  opts.observer = &c;
  (void)vm::Vm::run(app.module, opts);
  for (auto _ : state) {
    auto ev = trace::LocationEvents::build(c.trace().span());
    benchmark::DoNotOptimize(ev.num_locations());
  }
}
BENCHMARK(BM_LocationEvents);

// The legacy map-of-vectors builder on the same trace — the A/B baseline
// for the CSR index above.
void BM_LocationEventsLegacyMap(benchmark::State& state) {
  auto app = apps::build_lulesh();
  trace::TraceCollector c;
  vm::VmOptions opts = app.base;
  opts.observer = &c;
  (void)vm::Vm::run(app.module, opts);
  for (auto _ : state) {
    auto ev = trace::LegacyLocationEvents::build(c.trace().span());
    benchmark::DoNotOptimize(ev.num_locations());
  }
}
BENCHMARK(BM_LocationEventsLegacyMap);

// Liveness queries over the CSR index (binary search in per-location
// spans) — the per-write cost pattern_rates and the ACL sweep pay.
void BM_LocationEventsQueries(benchmark::State& state) {
  auto app = apps::build_lulesh();
  const auto prog = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(app.module));
  trace::ColumnTrace c(prog);
  vm::VmOptions opts = app.base;
  opts.program = prog.get();
  opts.column_sink = &c;
  (void)vm::Vm::run(app.module, opts);
  const auto ev = trace::LocationEvents::build(c.view());
  std::vector<std::pair<vm::Location, std::uint64_t>> probes;
  for (const vm::DynInstr& r : c.view()) {
    if (r.result_loc != vm::kNoLoc) probes.emplace_back(r.result_loc, r.index);
    if (probes.size() >= 100000) break;
  }
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto& [loc, at] : probes) {
      acc ^= ev.read_before_overwrite_after(loc, at);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["queries"] = static_cast<double>(probes.size());
}
BENCHMARK(BM_LocationEventsQueries);

void BM_DiffRun(benchmark::State& state) {
  const auto mod = make_kernel();
  // Both diff BMs thread the same reserve hint (the record count a session
  // would pass), so the legacy/columnar substrate A/B times appending, not
  // reallocation churn.
  acl::DiffOptions opts;
  opts.fault = vm::FaultPlan::result_bit(5000, 33);
  opts.reserve_records = acl::diff_run(mod, opts).usable_records();
  for (auto _ : state) {
    auto diff = acl::diff_run(mod, opts);
    benchmark::DoNotOptimize(diff.differs.size());
  }
}
BENCHMARK(BM_DiffRun);

void BM_DiffRunColumnar(benchmark::State& state) {
  const auto mod = make_kernel();
  const auto prog = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(mod));
  acl::DiffOptions opts;
  opts.fault = vm::FaultPlan::result_bit(5000, 33);
  opts.reserve_records = acl::diff_run(*prog, opts).usable_records();
  for (auto _ : state) {
    auto diff = acl::diff_run_columnar(prog, opts);
    benchmark::DoNotOptimize(diff.differs.size());
  }
}
BENCHMARK(BM_DiffRunColumnar);

void BM_AclSweep(benchmark::State& state) {
  const auto mod = make_kernel();
  acl::DiffOptions opts;
  opts.fault = vm::FaultPlan::result_bit(5000, 33);
  const auto diff = acl::diff_run(mod, opts);
  const auto events = trace::LocationEvents::build(
      std::span<const vm::DynInstr>(diff.faulty.records.data(),
                                    diff.usable_records()));
  for (auto _ : state) {
    auto acl_series = acl::build_acl(diff, events);
    benchmark::DoNotOptimize(acl_series.count.data());
  }
}
BENCHMARK(BM_AclSweep);

void BM_DddgBuild(benchmark::State& state) {
  auto app = apps::build_cg();
  trace::TraceCollector c;
  vm::VmOptions opts = app.base;
  opts.observer = &c;
  (void)vm::Vm::run(app.module, opts);
  const auto instances = trace::segment_regions(c.trace().span());
  const auto* cg_c = app.find_region("cg_c");
  const auto inst = trace::find_instance(instances, cg_c->id, 0).value();
  const auto slice = c.trace().slice(inst.body_begin(), inst.body_end());
  for (auto _ : state) {
    auto g = dddg::Graph::build(slice);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.counters["nodes"] = static_cast<double>(
      dddg::Graph::build(slice).num_nodes());
}
BENCHMARK(BM_DddgBuild);

// Observer-pipeline gating: a fully gated ObserverChain must keep the VM
// near the no-observer dispatch rate (the fast path MultiObserver's old
// always-true enabled() used to defeat).
void BM_ObserverChainGated(benchmark::State& state) {
  const auto mod = make_kernel();
  for (auto _ : state) {
    trace::TraceCollector c;
    vm::RegionWindowGate gate(&c, /*region_id=*/9999);  // never opens
    vm::ObserverChain chain;
    chain.then(&gate);
    vm::VmOptions opts;
    opts.observer = &chain;
    const auto r = vm::Vm::run(mod, opts);
    benchmark::DoNotOptimize(r.instructions);
    state.counters["records"] = static_cast<double>(c.trace().size());
  }
}
BENCHMARK(BM_ObserverChainGated);

void BM_FaultyRun(benchmark::State& state) {
  auto app = apps::build_cg();
  for (auto _ : state) {
    vm::VmOptions opts = app.base;
    opts.fault = vm::FaultPlan::result_bit(100000, 21);
    const auto r = vm::Vm::run(app.module, opts);
    benchmark::DoNotOptimize(r.outputs);
  }
}
BENCHMARK(BM_FaultyRun);

// One campaign trial on the decoded engine — the shape every injection
// takes since the pre-decoded execution refactor (decode amortized away).
void BM_FaultyRunDecoded(benchmark::State& state) {
  auto app = apps::build_cg();
  const auto prog = vm::DecodedProgram::decode(app.module);
  for (auto _ : state) {
    vm::VmOptions opts = app.base;
    opts.fault = vm::FaultPlan::result_bit(100000, 21);
    const auto r = vm::Vm::run(prog, opts);
    benchmark::DoNotOptimize(r.outputs);
  }
}
BENCHMARK(BM_FaultyRunDecoded);

}  // namespace

BENCHMARK_MAIN();
