// Figure 7: the number of Alive Corrupted Locations over dynamic
// instructions in LULESH after a fault injected in the last third of the
// main loop.
//
// Paper shape: corruption count rises inside the LagrangeNodal-analog
// kernel (hourgam/hxx temporaries), collapses when the temporaries die or
// are overwritten, and repeats across the remaining iterations, ending low.
#include "bench_common.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  bench::print_header("Fig. 7 - LULESH ACL series", cfg);

  core::AnalysisSession session(apps::build_lulesh());
  const auto& app = session.app();

  // Fault: one bit of a velocity word at entry of iteration 7 of 10 — the
  // "last third iteration of the main loop" of the paper.
  const auto xd = app.module.global(*app.module.find_global("xd"));
  const util::Cli cli(argc, argv);
  const auto instance = static_cast<std::uint32_t>(cli.get_int("iteration", 7));
  const auto bit = static_cast<std::uint32_t>(cli.get_int("bit", 45));
  const auto plan = vm::FaultPlan::region_input_bit(
      app.main_region, instance, xd.addr + 13 * 8, 8, bit);

  const auto rep = session.patterns_for(plan);
  const auto& acl = rep.acl;
  if (acl.count.empty()) {
    std::printf("no usable lockstep prefix (fault diverged immediately)\n");
    return 1;
  }

  std::printf("fault: xd[13] bit %u at main-loop iteration %u (of %d)\n",
              bit, instance + 1, app.main_iters);
  std::printf("first corruption at dynamic instruction %llu\n",
              static_cast<unsigned long long>(acl.first_corruption_index));
  std::printf("max alive corrupted locations: %u, final: %u\n",
              acl.max_count, acl.final_count());
  std::printf("kills: overwrite=%zu dead=%zu end-of-trace=%zu\n\n",
              acl.kills(acl::AclEventKind::KillOverwrite),
              acl.kills(acl::AclEventKind::KillDead),
              acl.kills(acl::AclEventKind::KillEndOfTrace));

  // Downsampled series, plus a sparkline per bucket, starting just before
  // the injection.
  const std::size_t begin =
      acl.first_corruption_index > 50 ? acl.first_corruption_index - 50 : 0;
  const std::size_t n = acl.count.size() - begin;
  const std::size_t buckets = 60;
  const std::size_t step = std::max<std::size_t>(1, n / buckets);
  util::Table table({"dyn instr", "ACL count", "bar"});
  for (std::size_t i = begin; i < acl.count.size(); i += step) {
    // Peak within the bucket, so short-lived spikes stay visible.
    std::uint32_t peak = 0;
    for (std::size_t j = i; j < std::min(i + step, acl.count.size()); ++j) {
      peak = std::max(peak, acl.count[j]);
    }
    table.add_row({std::to_string(i), std::to_string(peak),
                   std::string(std::min<std::uint32_t>(peak, 48), '#')});
  }
  table.print(std::cout);
  return 0;
}
