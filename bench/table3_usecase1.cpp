// Table III: Use Case 1 — resilience-aware application design. CG is
// hardened with the paper's patterns (Fig. 12: DCL + data overwriting via
// sprnvc temporaries and copy-back; Fig. 13: truncation window in the p.q
// dot product) and the whole-application success rate plus runtime are
// compared against the baseline.
//
// Paper shape: DCL+overwrite gives a large gain (0.59 -> 0.78), truncation
// a small one (0.59 -> 0.614), combined ~0.782, all at <0.1% runtime cost.
// The paper sizes this campaign at 99% confidence / 1% margin.
//
// All four variants go into ONE request: their whole-app and makea-phase
// campaigns interleave on the shared pool instead of running one variant
// at a time.
#include "bench_common.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace ft;
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  bench::print_header("Table III - hardening CG with resilience patterns",
                      cfg);

  struct Variant {
    const char* label;
    apps::CgHardening hardening;
  };
  const Variant variants[] = {
      {"None", {false, false}},
      {"DCL and overwrt.", {true, false}},
      {"Truncation", {false, true}},
      {"All together", {true, true}},
  };

  // One session per variant, renamed so report rows key by variant label.
  core::AnalysisRequest request;
  std::vector<std::shared_ptr<core::AnalysisSession>> sessions;
  for (const auto& v : variants) {
    auto app = (v.hardening.dcl_overwrite || v.hardening.truncation)
                   ? apps::build_cg_hardened(v.hardening)
                   : apps::build_cg();
    app.name = v.label;
    sessions.push_back(std::make_shared<core::AnalysisSession>(std::move(app)));
    request.session(sessions.back());
  }

  // The paper uses 99% confidence / 1% margin for the use cases. The
  // focused makea/sprnvc-phase campaign is where the Fig. 12 hardening
  // acts (see EXPERIMENTS.md for why the whole-app effect is diluted at
  // this scale).
  const auto report = core::run_analysis(
      request.region("cg_makea")
          .target(fault::TargetClass::Internal)
          .success_rates(cfg.campaign(250, 0.99, 0.01))
          .app_campaign(cfg.campaign(250, 0.99, 0.01))
          .execution(cfg.mode()));

  util::Table table({"resi. pattern applied", "app. resi. (SR)",
                     "makea-phase SR", "exe time (ms) min-max / avg",
                     "instructions"});
  for (std::size_t vi = 0; vi < sessions.size(); ++vi) {
    const auto& label = variants[vi].label;
    const auto* app_report = report.find_app(label);
    const auto* makea = report.find(label, "cg_makea",
                                    fault::TargetClass::Internal);

    // Execution time over 20 runs (paper reports min-max / average).
    const auto& spec = sessions[vi]->app();
    std::vector<double> times;
    std::uint64_t instructions = 0;
    for (int rep = 0; rep < 20; ++rep) {
      util::Stopwatch sw;
      const auto run = vm::Vm::run(spec.module, spec.base);
      times.push_back(sw.millis());
      instructions = run.instructions;
    }
    table.add_row(
        {label,
         util::Table::num(
             app_report && app_report->whole_app
                 ? app_report->whole_app->success_rate()
                 : 0.0,
             3),
         util::Table::num(makea ? makea->campaign.success_rate() : 0.0, 3),
         util::Table::num(util::min_of(times), 2) + "-" +
             util::Table::num(util::max_of(times), 2) + " / " +
             util::Table::num(util::mean(times), 2),
         std::to_string(instructions)});
  }
  table.print(std::cout);
  bench::print_report_meta(report);
  std::printf(
      "\nPaper shape: DCL+overwrite improves resilience (paper: +32%% whole-\n"
      "app; here the effect concentrates in the makea-phase column because\n"
      "makea is ~3%% of this mini-CG's instructions - see EXPERIMENTS.md),\n"
      "truncation is a wash, and runtime cost is negligible.\n");
  return 0;
}
