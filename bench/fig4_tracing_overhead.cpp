// Figure 4: parallel tracing overhead — per-rank wall-clock of each MPI
// application with and without per-process trace files.
//
// Three tracing configurations are measured:
//  * selective (default comparison): trace the first main-loop iteration,
//    which is the unit every downstream analysis consumes (per-region-
//    instance trace splitting, §IV-A). This is the configuration whose
//    overhead lands in the paper's "modest" range; the paper itself points
//    to selective collection for anything larger ("one can selectively
//    collect traces for individual functions").
//  * columnar: every dynamic instruction of the run, direct-emitted into
//    an in-memory trace::ColumnTrace by the decoded hot loop — the
//    substrate every session-side analysis reads. No DynInstr, no
//    observer dispatch, ~32 bytes/record.
//  * exhaustive: every dynamic instruction written to a per-rank trace
//    file through the DynInstr observer path, for reference. An
//    interpreter retires instructions in ~30ns, so writing a ~180-byte
//    record per instruction costs several times the baseline — see
//    EXPERIMENTS.md for the discussion of this substrate difference.
#include <filesystem>

#include "bench_common.h"
#include "mpi/world.h"
#include "trace/column.h"
#include "trace/file.h"
#include "trace/file_sink.h"
#include "trace/segment.h"
#include "util/cli.h"
#include "vm/decode.h"

namespace {

using namespace ft;

// Selective tracing is now a stock pipeline: vm::RegionWindowGate wraps the
// file sink inside a vm::ObserverChain, and the chain's enabled() keeps the
// VM on the fast path outside the traced window.

enum class Mode { Plain, PlainDecoded, Columnar, Selective, Exhaustive };

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::BenchConfig::parse(argc, argv);
  const util::Cli cli(argc, argv);
  const auto nranks = cli.get_int("ranks", 4);
  bench::print_header("Fig. 4 - parallel tracing overhead", cfg);
  std::printf("ranks: %lld (paper: 64 on 8 nodes; --ranks=N to change)\n\n",
              static_cast<long long>(nranks));

  const auto tmp = std::filesystem::temp_directory_path() / "fliptracker_fig4";
  std::filesystem::create_directories(tmp);

  util::Table table({"app", "baseline (s)", "decoded (s)", "engine speedup",
                     "selective trace (s)", "selective overhead",
                     "columnar trace (s)", "columnar overhead",
                     "exhaustive trace (s)", "exhaustive overhead"});
  double total_sel = 0.0, total_col = 0.0, total_exh = 0.0,
         total_engine = 0.0;
  int apps_measured = 0;

  for (const std::string name : {"LULESH", "IS", "KMEANS", "MG", "CG"}) {
    auto app = apps::build_app(name);
    const auto& mod = app.module;
    // Decoded once per app, shared read-only by all ranks (the per-rank Vms
    // only read it — the same sharing AnalysisSession relies on).
    const auto prog = std::make_shared<const vm::DecodedProgram>(
        vm::DecodedProgram::decode(mod));

    auto run_world = [&](Mode mode) {
      mpi::World world(nranks);
      util::Stopwatch sw;
      world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
        vm::VmOptions opts = app.base;
        opts.mpi = &ep;
        if (mode == Mode::Plain) {
          (void)vm::Vm::run(mod, opts);
          return;
        }
        if (mode == Mode::PlainDecoded) {
          (void)vm::Vm::run(*prog, opts);
          return;
        }
        if (mode == Mode::Columnar) {
          // Exhaustive in-memory columnar trace, one per rank, emitted
          // directly by the decoded hot loop.
          trace::ColumnTrace sink(prog);
          opts.column_sink = &sink;
          (void)vm::Vm::run(*prog, opts);
          return;
        }
        const auto path = trace::rank_trace_path(
            (tmp / name).string(), static_cast<int>(rank));
        trace::StreamingFileTracer sink(path, 1 << 16);
        vm::RegionWindowGate gate(&sink, app.main_region);
        vm::ObserverChain chain;
        chain.then(&gate);
        opts.observer = mode == Mode::Selective
                            ? static_cast<vm::ExecObserver*>(&chain)
                            : &sink;
        (void)vm::Vm::run(mod, opts);
      });
      return sw.seconds();
    };

    double best_plain = 1e30, best_dec = 1e30, best_col = 1e30,
           best_sel = 1e30, best_exh = 1e30;
    const int reps = cfg.full ? 5 : 3;
    for (int rep = 0; rep < reps; ++rep) {
      best_plain = std::min(best_plain, run_world(Mode::Plain));
      best_dec = std::min(best_dec, run_world(Mode::PlainDecoded));
      best_col = std::min(best_col, run_world(Mode::Columnar));
      best_sel = std::min(best_sel, run_world(Mode::Selective));
      best_exh = std::min(best_exh, run_world(Mode::Exhaustive));
    }
    const double sel = best_sel / best_plain - 1.0;
    const double col = best_col / best_plain - 1.0;
    const double exh = best_exh / best_plain - 1.0;
    const double engine = best_plain / best_dec;
    total_sel += sel;
    total_col += col;
    total_exh += exh;
    total_engine += engine;
    apps_measured++;
    table.add_row({name, util::Table::num(best_plain, 4),
                   util::Table::num(best_dec, 4),
                   util::Table::num(engine, 2) + "x",
                   util::Table::num(best_sel, 4), util::Table::pct(sel, 1),
                   util::Table::num(best_col, 4), util::Table::pct(col, 1),
                   util::Table::num(best_exh, 4), util::Table::pct(exh, 1)});
  }
  table.print(std::cout);
  std::printf("\naverage overhead: selective %s, columnar %s, exhaustive %s "
              "(paper: 45%% at 64 ranks)\n",
              util::Table::pct(total_sel / apps_measured, 1).c_str(),
              util::Table::pct(total_col / apps_measured, 1).c_str(),
              util::Table::pct(total_exh / apps_measured, 1).c_str());
  std::printf("decoded engine (untraced baseline): %.2fx the legacy "
              "interpreter on average\n",
              total_engine / apps_measured);

  std::filesystem::remove_all(tmp);
  return 0;
}
