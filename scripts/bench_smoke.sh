#!/usr/bin/env bash
# Perf-regression canary: run the Fig. 5 per-region campaign on CG at
# reduced trial counts, once on the batched analysis executor and once in
# legacy per-region scheduling, and report both wall-clocks. The batched
# run must never be slower than legacy beyond noise; on multi-core machines
# it should win outright (regions interleave on one shared work queue).
#
#   scripts/bench_smoke.sh [build-dir] [trials]
set -euo pipefail

build_dir="${1:-build}"
trials="${2:-40}"
bench="$build_dir/fig5_per_region_sr"

if [[ ! -x "$bench" ]]; then
  echo "error: $bench not found (build first: cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
  exit 1
fi

extract_ms() {
  # "campaign wall: 1410.9 ms (255 trials/s); total wall: 1504.6 ms"
  sed -n 's/^campaign wall: \([0-9.]*\) ms.*/\1/p' "$1"
}

tmp_batched=$(mktemp) tmp_legacy=$(mktemp)
trap 'rm -f "$tmp_batched" "$tmp_legacy"' EXIT

echo "== bench smoke: fig5 on CG, $trials trials per region/class =="
"$bench" --apps=CG --trials="$trials" | tee "$tmp_batched" | grep -E "^(schedule|campaign wall)"
echo
echo "-- legacy per-region scheduling --"
"$bench" --apps=CG --trials="$trials" --legacy | tee "$tmp_legacy" | grep -E "^(schedule|campaign wall)"

batched_ms=$(extract_ms "$tmp_batched")
legacy_ms=$(extract_ms "$tmp_legacy")

echo
awk -v b="$batched_ms" -v l="$legacy_ms" 'BEGIN {
  printf "batched: %.1f ms   legacy: %.1f ms   speedup: %.2fx\n", b, l, l / b;
  # Fail only on a clear regression: batched >25% slower than legacy.
  if (b > l * 1.25) { print "REGRESSION: batched scheduling slower than legacy"; exit 1 }
  print "OK"
}'
