#!/usr/bin/env bash
# Perf-regression canary, ten sections:
#
#  1. Engine A/B (vm_engine_ab): decoded vs legacy interpreter on the CG
#     whole-program campaign. The decoded engine must stay >= 2x the
#     legacy tree-walking interpreter in instructions/sec (and both must
#     produce identical outcome counts — the binary exits nonzero on a
#     mismatch).
#
#  2. Trace substrate A/B (trace_substrate_ab): columnar direct-emit traced
#     execution vs the DynInstr-observer baseline on the CG traced run.
#     Columnar must stay >= 2x in instructions/sec and >= 3x smaller in
#     resident bytes/record, with bit-identical ACL series/events and
#     pattern counts on both substrates (the binary exits nonzero on an
#     equivalence failure).
#
#  3. Scheduling A/B (fig5 on CG): the batched analysis executor vs legacy
#     per-region scheduling. Batched must never be slower than legacy
#     beyond noise; on multi-core machines it should win outright.
#
#  4. Campaign-scheduler A/B (campaign_fork_ab): snapshot-forked trials vs
#     the from-scratch trial loop on the CG whole-program campaign (one
#     pool worker — per-worker efficiency, stable across hosts). Forked
#     must stay >= 2x in trials/sec with identical outcome counts (the
#     binary exits nonzero on a mismatch) and must report prefix reuse.
#
#  5. Cross-rank determinism (rank_propagation): 4-rank campaigns on the
#     rank-decomposed CG/MG/LULESH with the rank-local ForkPolicy A/B'd on
#     vs off — outcome counts must be bit-identical (the binary exits
#     nonzero on a mismatch) and the serial-vs-parallel SR table prints
#     into the artifact.
#
#  6. Persistent store A/B (store_warm_ab): cold run_analysis computing and
#     publishing every artifact vs a warm replay of the identical request
#     from the store. Warm must be >= 5x faster with bit-identical outcome
#     counts and zero executed work (the binary exits nonzero on either
#     violation); the store stats line is also written to
#     <build-dir>/store_stats.out for the CI artifact.
#
#  7. Native-engine A/B/C (jit_engine_ab): the template JIT vs the decoded
#     and legacy interpreters on the CG whole-program campaign (fork off —
#     raw engine throughput). The JIT must stay >= 3x the decoded
#     interpreter in instructions/sec with bit-identical outcome counts on
#     all three engines (the binary exits nonzero on a mismatch). The
#     section output is also written to <build-dir>/jit_ab.out for the CI
#     artifact. On targets without a native backend the section reports
#     "skipped" and passes.
#
#  8. Hardening A/B (harden_ab): the campaign-guided transform pass (DWC +
#     ABFT detectors + checkpoint/rollback recovery) vs the hand-built CG
#     variant. Every protected region's effective success rate must stay >=
#     its baseline, the aggregate static overhead must stay <= 2x, and at
#     least one trial must recover via rollback (the binary exits nonzero
#     on any violation). The section output is also written to
#     <build-dir>/harden_ab.out for the CI artifact.
#
#  9. Compositional A/B (compose_ab): exhaustive snapshot-forked trials vs
#     the per-section composed engine on every app (bit-identical outcome
#     counts, the binary exits nonzero on a mismatch), then a cold composed
#     run on CG, a one-instruction constant edit, and a warm-incremental
#     run against the same store. The incremental summarization phase must
#     stay >= 5x faster than cold (suffix re-execution through the edit is
#     semantically required and excluded from the gate). The section output
#     is also written to <build-dir>/compose_ab.out for the CI artifact.
#
# 10. Scheduler/service A/B (sched_service_ab): an imbalanced multi-request
#     mix (CG app campaign + LULESH-RANKED rank campaign + MG compositional,
#     three concurrent clients) on the legacy single-queue ThreadPool vs the
#     work-stealing Scheduler at the same worker count, plus a
#     CampaignService leg multiplexing the same mix. Outcome counts must be
#     bit-identical across all three legs (the binary exits nonzero on a
#     mismatch); on hosts with >= 4 cores the work-stealing leg must stay
#     >= 1.3x in mix wall clock, on smaller hosts the speedup reports
#     "skipped" and only count identity gates. The section output is also
#     written to <build-dir>/sched_ab.out for the CI artifact.
#
# The combined output is also written to <build-dir>/bench_smoke.out so CI
# can upload it as an artifact.
#
#   scripts/bench_smoke.sh [build-dir] [trials]
set -euo pipefail

build_dir="${1:-build}"
trials="${2:-40}"
bench="$build_dir/fig5_per_region_sr"
engine_ab="$build_dir/vm_engine_ab"
trace_ab="$build_dir/trace_substrate_ab"
fork_ab="$build_dir/campaign_fork_ab"
rank_prop="$build_dir/rank_propagation"
store_ab="$build_dir/store_warm_ab"
jit_ab="$build_dir/jit_engine_ab"
harden_ab="$build_dir/harden_ab"
compose_ab="$build_dir/compose_ab"
sched_ab="$build_dir/sched_service_ab"
out="$build_dir/bench_smoke.out"
jit_ab_out="$build_dir/jit_ab.out"
store_stats_out="$build_dir/store_stats.out"
harden_ab_out="$build_dir/harden_ab.out"
compose_ab_out="$build_dir/compose_ab.out"
sched_ab_out="$build_dir/sched_ab.out"

for bin in "$bench" "$engine_ab" "$trace_ab" "$fork_ab" "$rank_prop" "$store_ab" "$jit_ab" "$harden_ab" "$compose_ab" "$sched_ab"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found (build first: cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
    exit 1
  fi
done

: > "$out"

extract_ms() {
  # "campaign wall: 1410.9 ms (255 trials/s); total wall: 1504.6 ms"
  sed -n 's/^campaign wall: \([0-9.]*\) ms.*/\1/p' "$1"
}

tmp_engine=$(mktemp) tmp_trace=$(mktemp) tmp_batched=$(mktemp) tmp_legacy=$(mktemp) tmp_fork=$(mktemp) tmp_rank=$(mktemp) tmp_store=$(mktemp) tmp_jit=$(mktemp) tmp_harden=$(mktemp) tmp_compose=$(mktemp) tmp_sched=$(mktemp)
trap 'rm -f "$tmp_engine" "$tmp_trace" "$tmp_batched" "$tmp_legacy" "$tmp_fork" "$tmp_rank" "$tmp_store" "$tmp_jit" "$tmp_harden" "$tmp_compose" "$tmp_sched"' EXIT

echo "== bench smoke 1/10: decoded vs legacy engine on the CG campaign =="
# A longer campaign than section 3 (and interleaved best-of-3 inside the
# bench) keeps the speedup measurement steady on busy/single-core hosts.
engine_trials=$(( trials * 2 > 60 ? trials * 2 : 60 ))
"$engine_ab" --trials="$engine_trials" | tee "$tmp_engine"
cat "$tmp_engine" >> "$out"

engine_speedup=$(sed -n 's/^engine speedup: \([0-9.]*\)x$/\1/p' "$tmp_engine")
awk -v s="$engine_speedup" 'BEGIN {
  if (s == "") { print "ERROR: no engine speedup reported"; exit 1 }
  if (s < 2.0) { printf "REGRESSION: decoded engine only %.2fx the legacy interpreter (need >= 2x)\n", s; exit 1 }
  printf "engine OK (%.2fx >= 2x)\n", s
}' | tee -a "$out"

echo
echo "== bench smoke 2/10: columnar vs DynInstr-observer traced run on CG =="
# The binary exits nonzero when the ACL series/events or pattern counts
# differ between substrates, failing the smoke under pipefail.
"$trace_ab" | tee "$tmp_trace"
cat "$tmp_trace" >> "$out"

trace_speedup=$(sed -n 's/^trace speedup: \([0-9.]*\)x$/\1/p' "$tmp_trace")
bytes_ratio=$(sed -n 's/^bytes\/record ratio: \([0-9.]*\)x smaller$/\1/p' "$tmp_trace")
awk -v s="$trace_speedup" -v r="$bytes_ratio" 'BEGIN {
  if (s == "") { print "ERROR: no trace speedup reported"; exit 1 }
  if (r == "") { print "ERROR: no bytes/record ratio reported"; exit 1 }
  if (s < 2.0) { printf "REGRESSION: columnar traced run only %.2fx the observer baseline (need >= 2x)\n", s; exit 1 }
  if (r < 3.0) { printf "REGRESSION: columnar records only %.2fx smaller than DynInstr (need >= 3x)\n", r; exit 1 }
  printf "trace substrate OK (%.2fx >= 2x instr/s, %.2fx >= 3x smaller records)\n", s, r
}' | tee -a "$out"

echo
echo "== bench smoke 3/10: fig5 on CG, $trials trials per region/class =="
"$bench" --apps=CG --trials="$trials" | tee "$tmp_batched" | grep -E "^(schedule|campaign)"
echo
echo "-- legacy per-region scheduling --"
"$bench" --apps=CG --trials="$trials" --legacy | tee "$tmp_legacy" | grep -E "^(schedule|campaign)"
cat "$tmp_batched" "$tmp_legacy" >> "$out"

batched_ms=$(extract_ms "$tmp_batched")
legacy_ms=$(extract_ms "$tmp_legacy")

echo
awk -v b="$batched_ms" -v l="$legacy_ms" 'BEGIN {
  printf "batched: %.1f ms   legacy: %.1f ms   speedup: %.2fx\n", b, l, l / b;
  # Fail only on a clear regression: batched >25% slower than legacy.
  if (b > l * 1.25) { print "REGRESSION: batched scheduling slower than legacy"; exit 1 }
  print "OK"
}' | tee -a "$out"

echo
echo "== bench smoke 4/10: snapshot-forked vs from-scratch campaign trials on CG =="
# A longer campaign than section 3 amortizes the one-time golden pass and
# keeps the best-of interleaved measurement steady; the binary itself
# exits nonzero if the two schedulers disagree on any outcome count.
fork_trials=$(( trials * 3 > 120 ? trials * 3 : 120 ))
"$fork_ab" --trials="$fork_trials" | tee "$tmp_fork"
cat "$tmp_fork" >> "$out"

fork_speedup=$(sed -n 's/^fork speedup: \([0-9.]*\)x$/\1/p' "$tmp_fork")
fork_snaps=$(sed -n 's/^prefix reuse: \([0-9]*\) snapshots.*/\1/p' "$tmp_fork")
awk -v s="$fork_speedup" -v n="$fork_snaps" 'BEGIN {
  if (s == "") { print "ERROR: no fork speedup reported"; exit 1 }
  if (n == "" || n == 0) { print "ERROR: forked campaign took no snapshots (prefix reuse inactive)"; exit 1 }
  if (s < 2.0) { printf "REGRESSION: snapshot-forked campaign only %.2fx from-scratch trial throughput (need >= 2x)\n", s; exit 1 }
  printf "campaign scheduler OK (%.2fx >= 2x trials/s, %d snapshots)\n", s, n
}' | tee -a "$out"

echo
echo "== bench smoke 5/10: cross-rank campaign determinism (4-rank CG/MG/LULESH) =="
# The binary runs every multi-rank campaign twice — rank-local snapshot
# forking on and off — and exits nonzero if any cross-rank outcome count
# differs, failing the smoke under pipefail.
"$rank_prop" --trials="$trials" | tee "$tmp_rank"
cat "$tmp_rank" >> "$out"

rank_ok=$(sed -n 's/^rank determinism: \(.*\)$/\1/p' "$tmp_rank")
if [[ "$rank_ok" != "OK" ]]; then
  echo "REGRESSION: cross-rank campaign counts depend on ForkPolicy" | tee -a "$out"
  exit 1
fi
echo "cross-rank determinism OK" | tee -a "$out"

echo
echo "== bench smoke 6/10: cold compute vs warm artifact-store replay on CG =="
# The binary exits nonzero if any outcome count differs between the cold
# and warm run, or if the warm run executed any trials / traced any
# instructions — the store must serve everything.
"$store_ab" --trials="$trials" | tee "$tmp_store"
cat "$tmp_store" >> "$out"

store_speedup=$(sed -n 's/^warm speedup: \([0-9.]*\)x$/\1/p' "$tmp_store")
awk -v s="$store_speedup" 'BEGIN {
  if (s == "") { print "ERROR: no warm speedup reported"; exit 1 }
  if (s < 5.0) { printf "REGRESSION: warm store replay only %.2fx the cold run (need >= 5x)\n", s; exit 1 }
  printf "persistent store OK (%.2fx >= 5x warm replay)\n", s
}' | tee -a "$out"
# The store stats line is its own CI artifact, next to bench_smoke.out.
sed -n '/^store stats:/p;/^warm speedup:/p;/^identity:/p;/^cold:/p;/^warm:/p' "$tmp_store" > "$store_stats_out"

echo
echo "== bench smoke 7/10: jit vs decoded vs legacy engine on the CG campaign =="
# Same campaign shape as section 1 (interleaved best-of inside the bench);
# the binary exits nonzero when any engine's outcome counts diverge.
"$jit_ab" --trials="$engine_trials" | tee "$tmp_jit"
cat "$tmp_jit" >> "$out"
# The JIT section is its own CI artifact, next to bench_smoke.out.
cp "$tmp_jit" "$jit_ab_out"

jit_speedup=$(sed -n 's/^jit speedup: \([0-9.]*\)x$/\1/p' "$tmp_jit")
if grep -q '^jit speedup: skipped$' "$tmp_jit"; then
  echo "jit engine skipped (no native backend on this target)" | tee -a "$out"
else
  awk -v s="$jit_speedup" 'BEGIN {
    if (s == "") { print "ERROR: no jit speedup reported"; exit 1 }
    if (s < 3.0) { printf "REGRESSION: jit only %.2fx the decoded interpreter (need >= 3x)\n", s; exit 1 }
    printf "jit engine OK (%.2fx >= 3x)\n", s
  }' | tee -a "$out"
fi

echo
echo "== bench smoke 8/10: campaign-guided hardening pass vs hand-built CG =="
# The binary exits nonzero if any protected region's effective success
# rate falls below its baseline, the aggregate static overhead exceeds
# 2x, or no trial ever exercised the rollback recovery path.
"$harden_ab" --trials="$trials" | tee "$tmp_harden"
cat "$tmp_harden" >> "$out"
# The hardening section is its own CI artifact, next to bench_smoke.out.
cp "$tmp_harden" "$harden_ab_out"

harden_gates=$(sed -n 's/^harden gates: \(.*\)$/\1/p' "$tmp_harden")
if [[ "$harden_gates" != "coverage OK, overhead OK, recovery OK" ]]; then
  echo "REGRESSION: hardening gates violated ($harden_gates)" | tee -a "$out"
  exit 1
fi
echo "hardening OK ($(sed -n 's/^aggregate overhead: \([0-9.]*x\).*/\1/p' "$tmp_harden") aggregate overhead)" | tee -a "$out"

echo
echo "== bench smoke 9/10: compositional campaigns - cold vs warm-incremental =="
# The binary exits nonzero if the composed engine's outcome counts diverge
# from the exhaustive scheduler on any app, if the post-edit incremental
# counts diverge from a from-scratch exhaustive run on the edited module,
# or if the warm run fails to serve untouched summaries from the store.
"$compose_ab" --trials="$trials" | tee "$tmp_compose"
cat "$tmp_compose" >> "$out"
# The compositional section is its own CI artifact, next to bench_smoke.out.
cp "$tmp_compose" "$compose_ab_out"

compose_speedup=$(sed -n 's/^compose speedup: \([0-9.]*\)x$/\1/p' "$tmp_compose")
awk -v s="$compose_speedup" 'BEGIN {
  if (s == "") { print "ERROR: no compose speedup reported"; exit 1 }
  if (s < 5.0) { printf "REGRESSION: incremental summarization only %.2fx the cold run (need >= 5x)\n", s; exit 1 }
  printf "compositional OK (%.2fx >= 5x incremental summarization)\n", s
}' | tee -a "$out"

echo
echo "== bench smoke 10/10: work-stealing scheduler vs single-queue pool on a mixed load =="
# Three concurrent clients on one executor (quick trial counts are baked
# into the bench: the mix's imbalance is the point, not its size). The
# binary exits nonzero when outcome counts differ between the legacy pool,
# the work-stealing scheduler, or the CampaignService leg.
"$sched_ab" | tee "$tmp_sched"
cat "$tmp_sched" >> "$out"
# The scheduler section is its own CI artifact, next to bench_smoke.out.
cp "$tmp_sched" "$sched_ab_out"

sched_speedup=$(sed -n 's/^sched speedup: \([0-9.]*\)x$/\1/p' "$tmp_sched")
if grep -q '^sched speedup: skipped' "$tmp_sched"; then
  echo "sched speedup skipped (single-core host; count identity still gated)" | tee -a "$out"
else
  awk -v s="$sched_speedup" 'BEGIN {
    if (s == "") { print "ERROR: no sched speedup reported"; exit 1 }
    if (s < 1.3) { printf "REGRESSION: work-stealing only %.2fx the single-queue pool (need >= 1.3x)\n", s; exit 1 }
    printf "scheduler OK (%.2fx >= 1.3x on the mixed load)\n", s
  }' | tee -a "$out"
fi
