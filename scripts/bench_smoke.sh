#!/usr/bin/env bash
# Perf-regression canary, two sections:
#
#  1. Engine A/B (vm_engine_ab): decoded vs legacy interpreter on the CG
#     whole-program campaign. The decoded engine must stay >= 2x the
#     legacy tree-walking interpreter in instructions/sec (and both must
#     produce identical outcome counts — the binary exits nonzero on a
#     mismatch).
#
#  2. Scheduling A/B (fig5 on CG): the batched analysis executor vs legacy
#     per-region scheduling. Batched must never be slower than legacy
#     beyond noise; on multi-core machines it should win outright.
#
# The combined output is also written to <build-dir>/bench_smoke.out so CI
# can upload it as an artifact.
#
#   scripts/bench_smoke.sh [build-dir] [trials]
set -euo pipefail

build_dir="${1:-build}"
trials="${2:-40}"
bench="$build_dir/fig5_per_region_sr"
engine_ab="$build_dir/vm_engine_ab"
out="$build_dir/bench_smoke.out"

for bin in "$bench" "$engine_ab"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found (build first: cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
    exit 1
  fi
done

: > "$out"

extract_ms() {
  # "campaign wall: 1410.9 ms (255 trials/s); total wall: 1504.6 ms"
  sed -n 's/^campaign wall: \([0-9.]*\) ms.*/\1/p' "$1"
}

tmp_engine=$(mktemp) tmp_batched=$(mktemp) tmp_legacy=$(mktemp)
trap 'rm -f "$tmp_engine" "$tmp_batched" "$tmp_legacy"' EXIT

echo "== bench smoke 1/2: decoded vs legacy engine on the CG campaign =="
# A longer campaign than section 2 (and interleaved best-of-3 inside the
# bench) keeps the speedup measurement steady on busy/single-core hosts.
engine_trials=$(( trials * 2 > 60 ? trials * 2 : 60 ))
"$engine_ab" --trials="$engine_trials" | tee "$tmp_engine"
cat "$tmp_engine" >> "$out"

engine_speedup=$(sed -n 's/^engine speedup: \([0-9.]*\)x$/\1/p' "$tmp_engine")
awk -v s="$engine_speedup" 'BEGIN {
  if (s == "") { print "ERROR: no engine speedup reported"; exit 1 }
  if (s < 2.0) { printf "REGRESSION: decoded engine only %.2fx the legacy interpreter (need >= 2x)\n", s; exit 1 }
  printf "engine OK (%.2fx >= 2x)\n", s
}' | tee -a "$out"

echo
echo "== bench smoke 2/2: fig5 on CG, $trials trials per region/class =="
"$bench" --apps=CG --trials="$trials" | tee "$tmp_batched" | grep -E "^(schedule|campaign)"
echo
echo "-- legacy per-region scheduling --"
"$bench" --apps=CG --trials="$trials" --legacy | tee "$tmp_legacy" | grep -E "^(schedule|campaign)"
cat "$tmp_batched" "$tmp_legacy" >> "$out"

batched_ms=$(extract_ms "$tmp_batched")
legacy_ms=$(extract_ms "$tmp_legacy")

echo
awk -v b="$batched_ms" -v l="$legacy_ms" 'BEGIN {
  printf "batched: %.1f ms   legacy: %.1f ms   speedup: %.2fx\n", b, l, l / b;
  # Fail only on a clear regression: batched >25% slower than legacy.
  if (b > l * 1.25) { print "REGRESSION: batched scheduling slower than legacy"; exit 1 }
  print "OK"
}' | tee -a "$out"
