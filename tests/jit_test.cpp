// JIT engine coverage: the native x64 backend (src/jit/) must be
// bit-identical to the decoded interpreter — results, trap kinds, retired
// counts, outputs and the full machine state at any pause point — for all
// ten workloads, clean and faulted and trapping. Snapshots taken under one
// engine must restore into the other with state_equals() true and an
// identical continuation (the campaign scheduler forks machines without
// knowing which engine advanced them). Also pins the per-opcode dispatch
// counters (VmOptions::count_opcodes) the JIT coverage report is built on.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/app.h"
#include "jit/jit_program.h"
#include "vm/decode.h"
#include "vm/interp.h"

namespace ft {
namespace {

struct JitApp {
  apps::AppSpec app;
  vm::DecodedProgram prog;
  std::shared_ptr<const jit::JitProgram> jit;

  explicit JitApp(const std::string& name)
      : app(apps::build_app(name)),
        prog(vm::DecodedProgram::decode(app.module)),
        jit(jit::JitProgram::compile(prog)) {}

  [[nodiscard]] vm::VmOptions interp_opts() const {
    auto o = app.base;
    o.jit = nullptr;
    return o;
  }
  [[nodiscard]] vm::VmOptions jit_opts() const {
    auto o = app.base;
    o.jit = jit.get();
    return o;
  }
};

void expect_same_result(const vm::RunResult& a, const vm::RunResult& b) {
  EXPECT_EQ(a.trap, b.trap);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.fault_fired, b.fault_fired);
  EXPECT_TRUE(a.outputs == b.outputs);
}

class JitEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(JitEquivalence, CleanRunBitIdentical) {
  if (!jit::JitProgram::supported()) GTEST_SKIP();
  JitApp ja(GetParam());
  ASSERT_NE(ja.jit, nullptr);
  expect_same_result(vm::Vm::run(ja.prog, ja.interp_opts()),
                     vm::Vm::run(ja.prog, ja.jit_opts()));
}

TEST_P(JitEquivalence, FaultedRunsBitIdentical) {
  if (!jit::JitProgram::supported()) GTEST_SKIP();
  JitApp ja(GetParam());
  ASSERT_NE(ja.jit, nullptr);
  const auto clean = vm::Vm::run(ja.prog, ja.interp_opts());
  const std::uint64_t n = clean.instructions;
  // Flip indices spread across the run (including the very first and very
  // last retired instruction) and a spread of bit positions — enough to
  // hit SDC, masked, trapping and verification-failure trials.
  const std::uint64_t indices[] = {0, 1, n / 7, n / 3, n / 2, n - 2, n - 1};
  const std::uint32_t bits[] = {0, 13, 31, 40, 62};
  for (const auto idx : indices) {
    for (const auto bit : bits) {
      const auto plan = vm::FaultPlan::result_bit(idx, bit);
      auto io = ja.interp_opts();
      auto jo = ja.jit_opts();
      io.fault = plan;
      jo.fault = plan;
      const auto ri = vm::Vm::run(ja.prog, io);
      const auto rj = vm::Vm::run(ja.prog, jo);
      EXPECT_EQ(ri.trap, rj.trap) << "idx=" << idx << " bit=" << bit;
      EXPECT_EQ(ri.instructions, rj.instructions)
          << "idx=" << idx << " bit=" << bit;
      EXPECT_EQ(ri.fault_fired, rj.fault_fired)
          << "idx=" << idx << " bit=" << bit;
      EXPECT_TRUE(ri.outputs == rj.outputs) << "idx=" << idx
                                            << " bit=" << bit;
    }
  }
}

TEST_P(JitEquivalence, RegionFaultBitIdentical) {
  if (!jit::JitProgram::supported()) GTEST_SKIP();
  JitApp ja(GetParam());
  ASSERT_NE(ja.jit, nullptr);
  if (ja.app.main_region == ~std::uint32_t{0}) GTEST_SKIP();
  // RegionInputMemoryBit faults fire inside the RegionEnter helper — fully
  // native, no deopt — so pin them separately from ResultBit plans.
  const auto plan = vm::FaultPlan::region_input_bit(
      ja.app.main_region, 0, ir::kGlobalBase, 8, 17);
  auto io = ja.interp_opts();
  auto jo = ja.jit_opts();
  io.fault = plan;
  jo.fault = plan;
  expect_same_result(vm::Vm::run(ja.prog, io), vm::Vm::run(ja.prog, jo));
}

TEST_P(JitEquivalence, HangBudgetBitIdentical) {
  if (!jit::JitProgram::supported()) GTEST_SKIP();
  JitApp ja(GetParam());
  ASSERT_NE(ja.jit, nullptr);
  const auto clean = vm::Vm::run(ja.prog, ja.interp_opts());
  auto io = ja.interp_opts();
  auto jo = ja.jit_opts();
  io.max_instructions = clean.instructions / 2;
  jo.max_instructions = clean.instructions / 2;
  const auto ri = vm::Vm::run(ja.prog, io);
  const auto rj = vm::Vm::run(ja.prog, jo);
  EXPECT_EQ(ri.trap, vm::TrapKind::Hang);
  expect_same_result(ri, rj);
}

// Snapshot interop: pause under the JIT, snapshot, restore into an
// interpreter machine (and the reverse) — state must match bit for bit and
// both continuations must agree with a straight-through run.
TEST_P(JitEquivalence, SnapshotInteropAcrossEngines) {
  if (!jit::JitProgram::supported()) GTEST_SKIP();
  JitApp ja(GetParam());
  ASSERT_NE(ja.jit, nullptr);
  const auto clean = vm::Vm::run(ja.prog, ja.interp_opts());
  const std::uint64_t mid = clean.instructions / 2;

  // JIT prefix -> snapshot -> interpreter tail.
  vm::Vm jv(ja.prog, ja.jit_opts());
  jv.run_until(mid);
  ASSERT_EQ(jv.status(), vm::Vm::Status::Running);
  ASSERT_EQ(jv.instructions_retired(), mid);
  const auto snap_j = jv.snapshot();

  // Interpreter prefix -> snapshot: the two snapshots must already agree.
  vm::Vm iv(ja.prog, ja.interp_opts());
  iv.run_until(mid);
  ASSERT_EQ(iv.instructions_retired(), mid);
  EXPECT_TRUE(iv.state_equals(snap_j));
  const auto snap_i = iv.snapshot();
  EXPECT_TRUE(jv.state_equals(snap_i));

  // Restore the JIT snapshot into an interpreter machine and finish there.
  vm::Vm tail_interp(ja.prog, snap_j, ja.interp_opts());
  auto ri = tail_interp.run();
  // And the interpreter snapshot into a JIT machine.
  vm::Vm tail_jit(ja.prog, snap_i, ja.jit_opts());
  auto rj = tail_jit.run();
  EXPECT_EQ(ri.trap, rj.trap);
  EXPECT_EQ(ri.instructions, clean.instructions);
  EXPECT_EQ(rj.instructions, clean.instructions);
  // The snapshotted prefix already holds the prefix outputs; the clean
  // run's output vector must equal prefix + tail on both engines.
  EXPECT_TRUE(ri.outputs == clean.outputs);
  EXPECT_TRUE(rj.outputs == clean.outputs);
}

TEST_P(JitEquivalence, ForkFromJitCursorMatchesInterpreter) {
  if (!jit::JitProgram::supported()) GTEST_SKIP();
  JitApp ja(GetParam());
  ASSERT_NE(ja.jit, nullptr);
  const auto clean = vm::Vm::run(ja.prog, ja.interp_opts());
  const std::uint64_t site = clean.instructions / 3;

  // Golden cursor advances natively; the trial machine forks from it,
  // runs a faulted tail natively, and must match a faulted interpreter run.
  auto jo = ja.jit_opts();
  jo.track_writes = true;
  vm::Vm golden(ja.prog, jo);
  golden.run_until(site);
  ASSERT_EQ(golden.status(), vm::Vm::Status::Running);

  vm::Vm trial(ja.prog, jo);
  trial.fork_from(golden, /*full=*/true);
  const auto plan = vm::FaultPlan::result_bit(site + 7, 29);
  trial.set_fault(plan);
  const auto rt = trial.run();

  auto io = ja.interp_opts();
  io.fault = plan;
  const auto ri = vm::Vm::run(ja.prog, io);
  expect_same_result(ri, rt);
}

TEST_P(JitEquivalence, RollbackFromNativeCursorReplaysClean) {
  // Recovery re-entry (fault/campaign.h): after Vm::rollback onto a
  // waypoint snapshot, the stale run_until pause mark is cleared, the hang
  // budget is whole again (restore rewound the retired count it is compared
  // against), the armed fault is disarmed and the dirty-page bitmap is
  // fully clean — consistently whether the machine advanced natively or
  // under the interpreter.
  if (!jit::JitProgram::supported()) GTEST_SKIP();
  JitApp ja(GetParam());
  ASSERT_NE(ja.jit, nullptr);
  const auto clean = vm::Vm::run(ja.prog, ja.interp_opts());
  const std::uint64_t way = clean.instructions / 4;
  const std::uint64_t deep = clean.instructions / 2;

  auto jo = ja.jit_opts();
  jo.track_writes = true;
  // A budget an un-rewound retired count would bust: rollback re-executes
  // the tail, so a machine that kept the pre-rollback count would classify
  // the replay as a hang well before completion.
  jo.max_instructions = clean.instructions + 8;
  auto io = ja.interp_opts();
  io.track_writes = true;
  io.max_instructions = jo.max_instructions;

  // Native cursor: pause at the waypoint, snapshot, then run on with an
  // armed fault to a deeper pause — exactly the state an interrupted trial
  // leaves behind when its detector fires.
  vm::Vm jv(ja.prog, jo);
  jv.run_until(way);
  ASSERT_EQ(jv.status(), vm::Vm::Status::Running);
  const auto waypoint = jv.snapshot();
  jv.set_fault(vm::FaultPlan::result_bit(way + 5, 11));
  jv.run_until(deep);
  jv.rollback(waypoint);

  // Interpreter machine through the same interrupted history, rolled back
  // onto the SAME waypoint: the two machines must agree bit for bit.
  vm::Vm iv(ja.prog, io);
  iv.set_fault(vm::FaultPlan::result_bit(way + 5, 11));
  iv.run_until(deep);
  iv.rollback(waypoint);
  EXPECT_TRUE(iv.state_equals(jv.snapshot()));
  EXPECT_TRUE(jv.state_equals(iv.snapshot()));

  // Dirty bitmaps are clean after rollback, so a fork partner must resync
  // in full; the forked trial's completion pins the bitmap reset.
  vm::Vm trial(ja.prog, jo);
  trial.fork_from(jv, /*full=*/true);
  const auto rt = trial.run();
  EXPECT_EQ(rt.trap, vm::TrapKind::None);
  EXPECT_TRUE(rt.outputs == clean.outputs);

  // Both rolled-back machines re-execute to completion: no spurious hang
  // (budget), no early pause (stale mark), no re-fired fault (disarmed),
  // outputs bit-identical to golden on both engines.
  const auto rj = jv.run();
  const auto ri = iv.run();
  EXPECT_EQ(rj.trap, vm::TrapKind::None);
  EXPECT_EQ(ri.trap, vm::TrapKind::None);
  EXPECT_EQ(rj.instructions, clean.instructions);
  EXPECT_EQ(ri.instructions, clean.instructions);
  EXPECT_FALSE(rj.fault_fired);
  EXPECT_FALSE(ri.fault_fired);
  EXPECT_TRUE(rj.outputs == clean.outputs);
  EXPECT_TRUE(ri.outputs == clean.outputs);
}

TEST_P(JitEquivalence, OpcodeCountsSumToRetired) {
  JitApp ja(GetParam());
  auto o = ja.interp_opts();
  o.count_opcodes = true;
  vm::Vm v(ja.prog, o);
  const auto r = v.run();
  const auto counts = v.opcode_counts();
  ASSERT_FALSE(counts.empty());
  const std::uint64_t sum =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  EXPECT_EQ(sum, r.instructions);  // clean run: every dispatch retires
}

TEST_P(JitEquivalence, CountOpcodesForcesInterpreter) {
  if (!jit::JitProgram::supported()) GTEST_SKIP();
  JitApp ja(GetParam());
  ASSERT_NE(ja.jit, nullptr);
  // count_opcodes needs per-dispatch increments, which native code does
  // not do — the engine dispatch must fall back to the interpreter and
  // still produce both the counters and the identical result.
  auto o = ja.jit_opts();
  o.count_opcodes = true;
  vm::Vm v(ja.prog, o);
  const auto r = v.run();
  expect_same_result(vm::Vm::run(ja.prog, ja.interp_opts()), r);
  EXPECT_FALSE(v.opcode_counts().empty());
}

INSTANTIATE_TEST_SUITE_P(AllApps, JitEquivalence,
                         ::testing::ValuesIn(apps::all_app_names()),
                         [](const auto& info) { return info.param; });

TEST(JitProgram, StatsReportCompiledAndDeoptSplit) {
  if (!jit::JitProgram::supported()) GTEST_SKIP();
  JitApp ja("CG");
  ASSERT_NE(ja.jit, nullptr);
  const auto& st = ja.jit->stats();
  EXPECT_EQ(st.compiled + st.deopt, ja.prog.code_size());
  EXPECT_GT(st.compiled, 0u);
  EXPECT_GT(st.code_bytes, 0u);
  // The single-rank workloads contain no MPI ops, so everything compiles.
  EXPECT_EQ(st.deopt, 0u);
}

TEST(JitProgram, OpcodeCompiledMatchesTemplates) {
  EXPECT_TRUE(jit::JitProgram::opcode_compiled(ir::Opcode::Add));
  EXPECT_TRUE(jit::JitProgram::opcode_compiled(ir::Opcode::Store));
  EXPECT_TRUE(jit::JitProgram::opcode_compiled(ir::Opcode::Call));
  EXPECT_FALSE(jit::JitProgram::opcode_compiled(ir::Opcode::MpiRank));
  EXPECT_FALSE(jit::JitProgram::opcode_compiled(ir::Opcode::MpiBarrier));
}

}  // namespace
}  // namespace ft
