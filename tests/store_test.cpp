// The persistent artifact store: on-disk ColumnTrace segments (save +
// zero-copy mmap load), the content-addressed result cache, the warm
// analysis path (second run of a request serves everything from the store
// and executes nothing), and corruption robustness (truncated segments,
// bad magic/version, torn tmp entries are misses, never crashes or wrong
// data).
//
// The cross-process check forks: the parent serializes each app's golden
// trace, a child process freshly rebuilds the app, mmap-loads the file and
// pins bit-identity against its own traced run — which also pins the
// content hashes (store keys) stable across processes.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.h"
#include "core/analysis.h"
#include "fault/campaign.h"
#include "store/artifact_store.h"
#include "store/format.h"
#include "store/trace_io.h"
#include "trace/column.h"
#include "util/hash.h"
#include "vm/decode.h"
#include "vm/interp.h"

namespace ft {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  std::string path;
  TempDir() {
    std::string templ = testing::TempDir() + "ft_store_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const char* made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    path = made ? made : templ;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Bit-identity of two column traces: every column byte-compared.
bool same_columns(const trace::ColumnTrace& a, const trace::ColumnTrace& b) {
  const auto ra = a.raw();
  const auto rb = b.raw();
  return ra.rows == rb.rows && ra.ops == rb.ops &&
         ra.num_extras == rb.num_extras &&
         std::memcmp(ra.pc, rb.pc, 4 * ra.rows) == 0 &&
         std::memcmp(ra.activation, rb.activation, 4 * ra.rows) == 0 &&
         std::memcmp(ra.ops_offset, rb.ops_offset, 4 * ra.rows) == 0 &&
         std::memcmp(ra.result_bits, rb.result_bits, 8 * ra.rows) == 0 &&
         std::memcmp(ra.op_bits, rb.op_bits, 8 * ra.ops) == 0 &&
         std::memcmp(ra.extras, rb.extras, 24 * ra.num_extras) == 0;
}

/// Golden columnar trace of one app spec (direct-emit traced run).
trace::ColumnTrace trace_app(
    const apps::AppSpec& spec,
    const std::shared_ptr<const vm::DecodedProgram>& program) {
  trace::ColumnTrace sink(program);
  vm::VmOptions opts = spec.base;
  opts.observer = nullptr;
  opts.column_sink = &sink;
  const auto run = vm::Vm::run(*program, opts);
  EXPECT_TRUE(run.completed());
  return sink;
}

fault::CampaignConfig quick_campaign(std::size_t trials) {
  fault::CampaignConfig cfg;
  cfg.trials = trials;
  return cfg;
}

// --- cross-process trace identity (must run before anything spawns pool
// threads in this binary: the child is forked) ------------------------------

TEST(StoreCrossProcess, SaveThenMmapLoadInFreshProcessAllApps) {
  TempDir dir;
  for (const auto& name : apps::all_app_names()) {
    const auto spec = apps::build_app(name);
    const auto program = std::make_shared<const vm::DecodedProgram>(
        vm::DecodedProgram::decode(spec.module));
    const auto sink = trace_app(spec, program);
    const std::string path = dir.path + "/" + name + ".fttrace";
    std::string err;
    ASSERT_TRUE(store::save_trace_file(path, sink,
                                       store::hash_module(spec.module), &err))
        << name << ": " << err;

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << name;
    if (pid == 0) {
      // Child: rebuild the app from scratch, derive the content hash
      // independently, mmap-load the parent's file and compare against a
      // fresh traced run. Exit codes: 0 identical, 2 load rejected, 3
      // columns differ.
      int rc = 0;
      {
        const auto child_spec = apps::build_app(name);
        const auto child_program = std::make_shared<const vm::DecodedProgram>(
            vm::DecodedProgram::decode(child_spec.module));
        const auto loaded = store::load_trace_file(
            path, child_program, store::hash_module(child_spec.module));
        if (!loaded.trace) {
          rc = 2;
        } else if (!same_columns(trace_app(child_spec, child_program),
                                 *loaded.trace)) {
          rc = 3;
        }
      }
      ::_exit(rc);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid) << name;
    ASSERT_TRUE(WIFEXITED(status)) << name;
    EXPECT_EQ(WEXITSTATUS(status), 0) << name;
  }
}

// --- trace segment round trip ----------------------------------------------

TEST(TraceIo, RoundTripIsBitIdenticalAndBorrowed) {
  TempDir dir;
  const auto spec = apps::build_app("CG");
  const auto program = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(spec.module));
  const auto sink = trace_app(spec, program);
  const std::string path = dir.path + "/cg.fttrace";
  ASSERT_TRUE(store::save_trace_file(path, sink, 0x1234u));

  const auto loaded = store::load_trace_file(path, program, 0x1234u);
  ASSERT_NE(loaded.trace, nullptr) << loaded.error;
  EXPECT_TRUE(loaded.trace->borrowed());
  EXPECT_GT(loaded.mapped_bytes, sizeof(store::TraceFileHeader));
  EXPECT_TRUE(same_columns(sink, *loaded.trace));
  // Record materialization runs over the mapped columns.
  ASSERT_EQ(loaded.trace->size(), sink.size());
  for (const std::size_t row : {std::size_t{0}, sink.size() / 2,
                                sink.size() - 1}) {
    const auto a = sink.record(row);
    const auto b = loaded.trace->record(row);
    EXPECT_EQ(a.result_bits, b.result_bits);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.index, b.index);
  }
}

TEST(TraceIo, WrongProgramHashIsRejected) {
  TempDir dir;
  const auto spec = apps::build_app("CG");
  const auto program = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(spec.module));
  const auto sink = trace_app(spec, program);
  const std::string path = dir.path + "/cg.fttrace";
  ASSERT_TRUE(store::save_trace_file(path, sink, 1));
  const auto loaded = store::load_trace_file(path, program, 2);
  EXPECT_EQ(loaded.trace, nullptr);
  EXPECT_NE(loaded.error.find("program hash"), std::string::npos);
}

// --- section / summary keys -------------------------------------------------

TEST(SummaryKeys, SectionHashTracksExecutedInstructions) {
  // hash_section digests the executed-instruction footprint of a trace
  // section: coordinates plus full instruction content. It must be
  // deterministic, sensitive to which instructions the section executes
  // (and in what order they are listed), and must change for exactly the
  // footprints that contain an edited instruction.
  const auto app = apps::build_app("CG");
  const std::vector<store::InstrCoord> a = {{0, 0, 0}, {0, 0, 1}};
  const std::vector<store::InstrCoord> b = {{0, 0, 0}};
  const std::vector<store::InstrCoord> rev = {{0, 0, 1}, {0, 0, 0}};
  EXPECT_EQ(store::hash_section(app.module, a),
            store::hash_section(app.module, a));
  EXPECT_NE(store::hash_section(app.module, a),
            store::hash_section(app.module, b));
  EXPECT_NE(store::hash_section(app.module, a),
            store::hash_section(app.module, rev));

  // Edit instruction (0,0,1): footprints containing it change, the
  // disjoint footprint keeps its digest — the invalidation granularity the
  // compositional engine's incremental claim rests on.
  auto edited = app.module;
  edited.function(0).blocks[0].instrs[1].aux ^= 1;
  EXPECT_NE(store::hash_section(app.module, a),
            store::hash_section(edited, a));
  EXPECT_EQ(store::hash_section(app.module, b),
            store::hash_section(edited, b));
}

TEST(SummaryKeys, BoundaryLiveSetDistinguishesIdenticalBodies) {
  // Two sections executing byte-identical code but entered with different
  // machine states (different boundary live-sets, i.e. different
  // entry-state hashes) must never share a summary blob — and every other
  // key ingredient must separate keys too.
  fault::CampaignConfig cfg;
  const std::uint64_t sec = 0x51C7104ull;
  const auto base = store::summary_key(sec, /*entry=*/1, 0, 100, 7, 9, cfg);
  EXPECT_EQ(base, store::summary_key(sec, 1, 0, 100, 7, 9, cfg));
  EXPECT_NE(base, store::summary_key(sec, /*entry=*/2, 0, 100, 7, 9, cfg));
  EXPECT_NE(base, store::summary_key(~sec, 1, 0, 100, 7, 9, cfg));
  EXPECT_NE(base, store::summary_key(sec, 1, 1, 100, 7, 9, cfg));
  EXPECT_NE(base, store::summary_key(sec, 1, 0, 101, 7, 9, cfg));
  EXPECT_NE(base, store::summary_key(sec, 1, 0, 100, 8, 9, cfg));
  EXPECT_NE(base, store::summary_key(sec, 1, 0, 100, 7, 10, cfg));

  auto c = cfg;
  c.trials = 64;
  EXPECT_NE(base, store::summary_key(sec, 1, 0, 100, 7, 9, c));
  c = cfg;
  c.seed ^= 1;
  EXPECT_NE(base, store::summary_key(sec, 1, 0, 100, 7, 9, c));
  c = cfg;
  c.recovery.enabled = !c.recovery.enabled;
  EXPECT_NE(base, store::summary_key(sec, 1, 0, 100, 7, 9, c));
}

// --- result blob round trips -----------------------------------------------

TEST(ArtifactStore, BlobRoundTripsAreExact) {
  TempDir dir;
  store::ArtifactStore st(dir.path + "/store");

  vm::RunResult golden;
  golden.instructions = 12345;
  golden.outputs.push_back({0x3FF0000000000000ull, ir::Type::F64});
  golden.outputs.push_back({42, ir::Type::I64});
  ASSERT_TRUE(st.publish_golden(7, golden));
  const auto g = st.load_golden(7);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->instructions, golden.instructions);
  EXPECT_EQ(g->outputs, golden.outputs);
  EXPECT_EQ(g->trap, vm::TrapKind::None);

  fault::SiteEnumerationResult sites;
  sites.sites.region_id = 3;
  sites.sites.instance = 1;
  sites.sites.internal.push_back({100, 64});
  sites.sites.internal.push_back({200, 32});
  sites.sites.input.push_back({0x40, 8});
  sites.fault_free_instructions = 999;
  sites.region_entry_index = 55;
  sites.region_found = true;
  ASSERT_TRUE(st.publish_sites(8, sites));
  const auto s = st.load_sites(8);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->sites.internal.size(), 2u);
  EXPECT_EQ(s->sites.internal[1].dyn_index, 200u);
  EXPECT_EQ(s->sites.input[0].address, 0x40u);
  EXPECT_EQ(s->region_entry_index, 55u);
  EXPECT_TRUE(s->region_found);

  fault::CampaignResult camp;
  camp.trials = 100;
  camp.success = 60;
  camp.failed = 30;
  camp.crashed = 10;
  camp.population_bits = 4096;
  camp.instructions_retired = 777777;
  camp.early_exits = 5;
  ASSERT_TRUE(st.publish_campaign(9, camp));
  const auto c = st.load_campaign(9);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->success, 60u);
  EXPECT_EQ(c->crashed, 10u);
  EXPECT_EQ(c->population_bits, 4096u);
  EXPECT_EQ(c->early_exits, 5u);

  // Kinds never alias: a campaign key does not answer golden lookups.
  EXPECT_FALSE(st.load_golden(9).has_value());

  const auto counters = st.counters();
  EXPECT_EQ(counters.publishes, 3u);
  EXPECT_EQ(counters.hits, 3u);
  const auto stats = st.disk_stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_GT(stats.bytes, 3 * sizeof(store::BlobHeader));
}

// --- warm analysis path ------------------------------------------------------

core::AnalysisRequest warm_request(const std::string& store_dir) {
  return core::AnalysisRequest()
      .app("CG")
      .analysis_regions()
      .target(fault::TargetClass::Internal)
      .target(fault::TargetClass::Input)
      .success_rates(quick_campaign(24))
      .app_campaign(quick_campaign(16))
      .store_dir(store_dir);
}

TEST(StoreAnalysis, SecondRunServesEverythingBitIdentical) {
  // Honor a CI-shared store directory (the double-ctest job exercises the
  // warm path across processes and under the sanitizers); otherwise use a
  // fresh temp store, in which case the first run is provably cold.
  TempDir scratch;
  const char* env = std::getenv("FT_STORE_DIR");
  const bool shared = env && *env;
  const std::string dir =
      shared ? std::string(env) : scratch.path + "/store";

  const auto cold = core::run_analysis(warm_request(dir));
  if (!shared) {
    EXPECT_EQ(cold.trials_executed, cold.total_trials);
    EXPECT_GT(cold.trials_executed, 0u);
    EXPECT_GT(cold.golden_traced_instructions, 0u);
    EXPECT_GT(cold.store_misses, 0u);
    EXPECT_GT(cold.store_bytes_written, 0u);
  }

  const auto warm = core::run_analysis(warm_request(dir));
  // The proof counters: a warm run executes zero campaign trials and zero
  // golden traced instructions — everything is served from the store.
  EXPECT_EQ(warm.trials_executed, 0u);
  EXPECT_EQ(warm.golden_traced_instructions, 0u);
  EXPECT_EQ(warm.campaign_units, 0u);
  EXPECT_GT(warm.campaigns_from_store, 0u);
  EXPECT_GT(warm.store_hits, 0u);
  EXPECT_GT(warm.store_bytes_read, 0u);

  // ...and the served results are bit-identical to the computed ones.
  EXPECT_EQ(warm.total_trials, cold.total_trials);
  ASSERT_EQ(warm.entries.size(), cold.entries.size());
  for (std::size_t i = 0; i < cold.entries.size(); ++i) {
    const auto& a = cold.entries[i].campaign;
    const auto& b = warm.entries[i].campaign;
    EXPECT_EQ(a.trials, b.trials) << i;
    EXPECT_EQ(a.success, b.success) << i;
    EXPECT_EQ(a.failed, b.failed) << i;
    EXPECT_EQ(a.crashed, b.crashed) << i;
    EXPECT_EQ(a.population_bits, b.population_bits) << i;
  }
  ASSERT_EQ(warm.apps.size(), cold.apps.size());
  ASSERT_TRUE(cold.apps[0].whole_app.has_value());
  ASSERT_TRUE(warm.apps[0].whole_app.has_value());
  EXPECT_EQ(warm.apps[0].whole_app->success, cold.apps[0].whole_app->success);
  EXPECT_EQ(warm.apps[0].whole_app->failed, cold.apps[0].whole_app->failed);
  EXPECT_EQ(warm.apps[0].whole_app->crashed, cold.apps[0].whole_app->crashed);
  EXPECT_EQ(warm.apps[0].whole_app->trials, cold.apps[0].whole_app->trials);
}

// --- corruption robustness ---------------------------------------------------

void truncate_file(const std::string& path, std::uintmax_t keep) {
  std::error_code ec;
  fs::resize_file(path, keep, ec);
  ASSERT_FALSE(ec) << path;
}

void stomp_bytes(const std::string& path, std::uint64_t offset,
                 const void* data, std::size_t n) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

TEST(StoreRobustness, CorruptEntriesAreMissesAndRecomputedCorrectly) {
  TempDir scratch;
  const std::string dir = scratch.path + "/store";

  // Reference: the same request with no store at all.
  const auto reference = core::run_analysis(warm_request("").store_dir(""));
  // Populate, then vandalize every committed entry a different way.
  (void)core::run_analysis(warm_request(dir));

  std::size_t mutated = 0;
  for (const auto& entry : fs::directory_iterator(dir + "/traces")) {
    // Truncate trace segments mid-column (header intact, columns torn).
    truncate_file(entry.path().string(), fs::file_size(entry.path()) / 2);
    ++mutated;
  }
  bool first_blob = true;
  for (const auto& entry : fs::directory_iterator(dir + "/blobs")) {
    const auto path = entry.path().string();
    if (first_blob) {
      const std::uint64_t bad_magic = 0x21212121212121ull;
      stomp_bytes(path, 0, &bad_magic, sizeof(bad_magic));  // bad magic
      first_blob = false;
    } else {
      const std::uint32_t bad_version = 0xFFFFu;
      stomp_bytes(path, 8, &bad_version, sizeof(bad_version));  // bad version
    }
    ++mutated;
  }
  ASSERT_GT(mutated, 2u);
  // A torn writer that never committed: junk in tmp/ must be invisible.
  std::ofstream(dir + "/tmp/12345.0") << "partial garbage";

  const auto recomputed = core::run_analysis(warm_request(dir));
  // Nothing served, everything recomputed — and the results match the
  // storeless reference bit for bit.
  EXPECT_EQ(recomputed.trials_executed, recomputed.total_trials);
  EXPECT_EQ(recomputed.campaigns_from_store, 0u);
  EXPECT_GT(recomputed.store_misses, 0u);
  ASSERT_EQ(recomputed.entries.size(), reference.entries.size());
  for (std::size_t i = 0; i < reference.entries.size(); ++i) {
    const auto& a = reference.entries[i].campaign;
    const auto& b = recomputed.entries[i].campaign;
    EXPECT_EQ(a.success, b.success) << i;
    EXPECT_EQ(a.failed, b.failed) << i;
    EXPECT_EQ(a.crashed, b.crashed) << i;
    EXPECT_EQ(a.trials, b.trials) << i;
  }
  ASSERT_TRUE(recomputed.apps[0].whole_app.has_value());
  EXPECT_EQ(recomputed.apps[0].whole_app->success,
            reference.apps[0].whole_app->success);

  // The recompute republished: a third run is warm again.
  const auto warm = core::run_analysis(warm_request(dir));
  EXPECT_EQ(warm.trials_executed, 0u);
  EXPECT_EQ(warm.golden_traced_instructions, 0u);
}

TEST(StoreRobustness, TruncatedHeaderAndTinyFilesAreMisses) {
  TempDir dir;
  store::ArtifactStore st(dir.path + "/store");
  const auto spec = apps::build_app("MG");
  const auto program = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(spec.module));
  const auto sink = trace_app(spec, program);
  ASSERT_TRUE(st.publish_trace(11, sink, 0xAB));
  ASSERT_NE(st.load_trace(11, program, 0xAB), nullptr);

  // Truncate to less than a header.
  const std::string path =
      dir.path + "/store/traces/000000000000000b.fttrace";
  ASSERT_TRUE(fs::exists(path));
  truncate_file(path, 10);
  EXPECT_EQ(st.load_trace(11, program, 0xAB), nullptr);
  // Zero-length file.
  truncate_file(path, 0);
  EXPECT_EQ(st.load_trace(11, program, 0xAB), nullptr);
  const auto counters = st.counters();
  EXPECT_EQ(counters.corrupt, 2u);

  // tmp/ garbage is excluded from disk stats and lookups; the torn trace
  // file itself still occupies its (dead) entry slot on disk.
  const auto before = st.disk_stats();
  std::ofstream(dir.path + "/store/tmp/999.7") << "torn";
  EXPECT_EQ(st.disk_stats().entries, before.entries);
  EXPECT_EQ(st.disk_stats().bytes, before.bytes);
}

// --- blob version compatibility ---------------------------------------------

void append_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

TEST(StoreCompat, PreviousVersionCampaignBlobIsACountedMiss) {
  TempDir dir;
  store::ArtifactStore st(dir.path + "/store");

  // A genuine v1-era campaign file: version 1 header over the old 11-field
  // payload (no detected_recovered / detected_unrecoverable), with an
  // internally consistent payload hash. Only the version is stale.
  std::string payload;
  append_u64(payload, 100);     // trials
  append_u64(payload, 60);      // success
  append_u64(payload, 30);      // failed
  append_u64(payload, 10);      // crashed
  append_u64(payload, 4096);    // population_bits
  append_u64(payload, 777777);  // instructions_retired
  append_u64(payload, 3);       // snapshots_taken
  append_u64(payload, 50);      // prefix_instructions_saved
  append_u64(payload, 20);      // convergence_instructions_saved
  append_u64(payload, 5);       // early_exits
  append_u64(payload, 2);       // resume_depth

  store::BlobHeader h;
  h.version = 1;
  h.kind = static_cast<std::uint32_t>(store::BlobKind::Campaign);
  h.payload_bytes = payload.size();
  h.payload_hash = util::hash_bytes(payload.data(), payload.size());
  const std::uint64_t key = 31;
  const std::string path =
      dir.path + "/store/blobs/000000000000001f.campaign";
  {
    std::ofstream f(path, std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.write(reinterpret_cast<const char*>(&h), sizeof(h));
    f.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }

  // The v2 reader must refuse it before ever touching the payload: a
  // counted miss, never a reinterpretation of the 11-field layout as 13.
  EXPECT_FALSE(st.load_campaign(key).has_value());
  auto counters = st.counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.corrupt, 1u);
  EXPECT_EQ(counters.hits, 0u);

  // A recompute republishes under the same key and the entry is warm again,
  // now carrying the v2 outcome classes.
  fault::CampaignResult camp;
  camp.trials = 100;
  camp.success = 55;
  camp.detected_recovered = 5;
  camp.detected_unrecoverable = 30;
  camp.crashed = 10;
  ASSERT_TRUE(st.publish_campaign(key, camp));
  const auto reloaded = st.load_campaign(key);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->detected_recovered, 5u);
  EXPECT_EQ(reloaded->detected_unrecoverable, 30u);
  counters = st.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
}

TEST(StoreCompat, DetectedOutcomeCountsRoundTripAndCorruptionIsAMiss) {
  TempDir dir;
  store::ArtifactStore st(dir.path + "/store");

  fault::CampaignResult camp;
  camp.trials = 256;
  camp.success = 100;
  camp.failed = 40;
  camp.crashed = 20;
  camp.detected_recovered = 66;
  camp.detected_unrecoverable = 30;
  camp.population_bits = 8192;
  camp.instructions_retired = 123456789;
  camp.snapshots_taken = 7;
  camp.prefix_instructions_saved = 1111;
  camp.convergence_instructions_saved = 2222;
  camp.early_exits = 9;
  camp.resume_depth = 3;
  const std::uint64_t key = 47;
  ASSERT_TRUE(st.publish_campaign(key, camp));

  const auto c = st.load_campaign(key);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->trials, camp.trials);
  EXPECT_EQ(c->success, camp.success);
  EXPECT_EQ(c->failed, camp.failed);
  EXPECT_EQ(c->crashed, camp.crashed);
  EXPECT_EQ(c->detected_recovered, camp.detected_recovered);
  EXPECT_EQ(c->detected_unrecoverable, camp.detected_unrecoverable);
  EXPECT_EQ(c->population_bits, camp.population_bits);
  EXPECT_EQ(c->instructions_retired, camp.instructions_retired);
  EXPECT_EQ(c->snapshots_taken, camp.snapshots_taken);
  EXPECT_EQ(c->prefix_instructions_saved, camp.prefix_instructions_saved);
  EXPECT_EQ(c->convergence_instructions_saved,
            camp.convergence_instructions_saved);
  EXPECT_EQ(c->early_exits, camp.early_exits);
  EXPECT_EQ(c->resume_depth, camp.resume_depth);

  // Flip one byte inside the detected_recovered field on disk. The payload
  // hash catches it: a counted miss, never a silently altered count.
  const std::string path =
      dir.path + "/store/blobs/000000000000002f.campaign";
  ASSERT_TRUE(fs::exists(path));
  const std::uint8_t stomp = 0x5A;
  stomp_bytes(path, sizeof(store::BlobHeader) + 4 * 8, &stomp, 1);
  EXPECT_FALSE(st.load_campaign(key).has_value());
  const auto counters = st.counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.corrupt, 1u);

  // Republish repairs the entry in place.
  ASSERT_TRUE(st.publish_campaign(key, camp));
  const auto repaired = st.load_campaign(key);
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(repaired->detected_recovered, camp.detected_recovered);
  EXPECT_EQ(repaired->detected_unrecoverable, camp.detected_unrecoverable);
}

// Every subdirectory creation is checked individually. A regular file
// squatting where a subdir must go makes that one create_directories fail —
// even for root, where permission-based setups are ignored. This pins the
// old bug where one error_code was reused across all three calls and only
// the LAST one was checked: with "blobs" blocked, the later "tmp" creation
// succeeded, cleared the code, and the ctor reported a healthy store.
TEST(ArtifactStore, CtorThrowsWhenAnySubdirCannotBeCreated) {
  for (const char* sub : {"traces", "blobs", "tmp"}) {
    TempDir dir;
    const std::string root = dir.path + "/store";
    ASSERT_TRUE(fs::create_directories(root));
    std::ofstream(root + "/" + sub) << "squatter";  // file where a dir must go
    EXPECT_THROW(store::ArtifactStore{root}, std::runtime_error) << sub;
  }
}

// Construction sweeps tmp/ entries left by crashed processes: a dead pid's
// scratch files are removed and counted, a live pid's (ours) survive.
TEST(ArtifactStore, SweepsDeadPidTmpFilesOnOpen) {
  TempDir dir;
  const std::string root = dir.path + "/store";
  { store::ArtifactStore st(root); }  // create layout

  // A guaranteed-dead pid: fork a child that exits immediately and reap it.
  const pid_t dead = fork();
  ASSERT_NE(dead, -1);
  if (dead == 0) _exit(0);
  int status = 0;
  ASSERT_EQ(waitpid(dead, &status, 0), dead);

  const std::string orphan1 = root + "/tmp/" + std::to_string(dead) + ".0";
  const std::string orphan2 = root + "/tmp/" + std::to_string(dead) + ".17";
  const std::string live =
      root + "/tmp/" + std::to_string(::getpid()) + ".0";
  const std::string odd = root + "/tmp/not-a-pid-entry";
  for (const auto& p : {orphan1, orphan2, live, odd}) {
    std::ofstream(p) << "scratch";
  }

  store::ArtifactStore st(root);
  EXPECT_FALSE(fs::exists(orphan1));
  EXPECT_FALSE(fs::exists(orphan2));
  EXPECT_TRUE(fs::exists(live)) << "live writer's scratch must survive";
  EXPECT_TRUE(fs::exists(odd)) << "non-pid names are left alone";
  EXPECT_EQ(st.counters().stale_tmp_swept, 2u);
}

}  // namespace
}  // namespace ft
