// DDDG construction (§III-B): roots are region inputs, leaves are values
// nothing in the slice consumes, edges follow dataflow; DOT export.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "dddg/graph.h"
#include "util/bits.h"
#include "hl/builder.h"
#include "trace/collector.h"
#include "trace/segment.h"
#include "vm/interp.h"

namespace ft {
namespace {

struct Traced {
  trace::Trace trace;
  std::vector<trace::RegionInstance> instances;
};

Traced run_traced(const ir::Module& m, const vm::VmOptions& base = {}) {
  trace::TraceCollector c;
  vm::VmOptions opts = base;
  opts.observer = &c;
  const auto r = vm::Vm::run(m, opts);
  EXPECT_TRUE(r.completed());
  Traced t;
  t.trace = c.take();
  t.instances = trace::segment_regions(t.trace.span());
  return t;
}

TEST(Dddg, RootsAndLeavesOfSimpleRegion) {
  hl::ProgramBuilder pb("t");
  auto in = pb.global_init_f64("in", {2.0, 3.0});
  auto out = pb.global_f64("out", 1);
  const auto rid = pb.declare_region("r", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.region(rid, [&] {
      // out = in0 * in1 + in0
      auto a = f.ld(in, 0);
      auto b = f.ld(in, 1);
      f.st(out, 0, a * b + a);
    });
    f.emit(f.ld(out, 0));
    f.ret();
  }
  auto mod = pb.finish();
  const auto t = run_traced(mod);
  const auto inst = trace::find_instance(t.instances, rid, 0).value();
  const auto g = dddg::Graph::build(
      t.trace.slice(inst.body_begin(), inst.body_end()));

  EXPECT_GT(g.num_nodes(), 0u);
  EXPECT_GT(g.num_edges(), 0u);

  // Roots: the two loaded memory cells flow in from outside.
  const auto roots = g.roots();
  ASSERT_GE(roots.size(), 2u);
  std::size_t mem_roots = 0;
  for (const auto id : roots) {
    if (vm::is_mem_loc(g.nodes()[id].loc)) mem_roots++;
  }
  EXPECT_GE(mem_roots, 2u);

  // The final store to `out` is a leaf (nothing inside the slice reads it).
  const auto leaves = g.leaves();
  bool out_is_leaf = false;
  for (const auto id : leaves) {
    const auto& n = g.nodes()[id];
    if (n.op == ir::Opcode::Store && vm::is_mem_loc(n.loc)) {
      out_is_leaf = true;
      EXPECT_DOUBLE_EQ(util::bits_to_f64(n.bits), 2.0 * 3.0 + 2.0);
    }
  }
  EXPECT_TRUE(out_is_leaf);
}

TEST(Dddg, EdgesRespectProgramOrder) {
  hl::ProgramBuilder pb("t");
  const auto rid = pb.declare_region("r", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.region(rid, [&] {
      auto x = f.c_f64(1.0) + f.c_f64(2.0);
      auto y = x * x;
      f.emit(y);
    });
    f.ret();
  }
  auto mod = pb.finish();
  const auto t = run_traced(mod);
  const auto inst = trace::find_instance(t.instances, rid, 0).value();
  const auto g = dddg::Graph::build(
      t.trace.slice(inst.body_begin(), inst.body_end()));
  for (const auto& e : g.edges()) {
    EXPECT_LE(g.nodes()[e.from].dyn_index, g.nodes()[e.to].dyn_index);
  }
}

TEST(Dddg, DotExportContainsNodesAndEdges) {
  hl::ProgramBuilder pb("t");
  const auto rid = pb.declare_region("r", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.region(rid, [&] { f.emit(f.c_f64(1.5) * f.c_f64(2.0)); });
    f.ret();
  }
  auto mod = pb.finish();
  const auto t = run_traced(mod);
  const auto inst = trace::find_instance(t.instances, rid, 0).value();
  const auto g = dddg::Graph::build(
      t.trace.slice(inst.body_begin(), inst.body_end()));
  const auto dot = dddg::to_dot(g, "test");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("fmul"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

// Property sweep: for every app's first analysis-region instance, the DDDG
// is well-formed (roots exist, edges in range, out-degrees consistent).
class DddgOverApps : public ::testing::TestWithParam<std::string> {};

TEST_P(DddgOverApps, WellFormedOnFirstRegionInstance) {
  auto app = apps::build_app(GetParam());
  const auto t = run_traced(app.module, app.base);
  for (const auto& rd : app.analysis_regions) {
    const auto inst = trace::find_instance(t.instances, rd.id, 0);
    if (!inst) continue;
    const auto g = dddg::Graph::build(
        t.trace.slice(inst->body_begin(), inst->body_end()));
    EXPECT_GT(g.num_nodes(), 0u) << rd.name;
    // NB: pure generator regions (rand-driven key/feature initialization)
    // legitimately have zero roots; every other region must have inputs.
    for (const auto& e : g.edges()) {
      ASSERT_LT(e.from, g.num_nodes());
      ASSERT_LT(e.to, g.num_nodes());
    }
    const auto deg = g.out_degrees();
    std::size_t total_deg = 0;
    for (const auto d : deg) total_deg += d;
    EXPECT_EQ(total_deg, g.num_edges());
  }
}

INSTANTIATE_TEST_SUITE_P(Paper, DddgOverApps,
                         ::testing::Values("CG", "MG", "IS", "KMEANS",
                                           "LULESH"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace ft
