// The work-stealing scheduler (util/scheduler.h): full coverage of submit /
// parallel_for semantics, steal correctness (every task runs exactly once,
// wherever it runs), nested parallel_for from workers and from submitted
// tasks, exception propagation with full chunk joins, counter semantics,
// and campaign count-identity across executor implementations and sizes.
// This test runs under the TSan CI job — the deque protocol, the idle
// backoff and the help-first join are exactly the code paths a race would
// hide in.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apps/app.h"
#include "core/analysis.h"
#include "fault/campaign.h"
#include "util/scheduler.h"
#include "util/thread_pool.h"

namespace ft {
namespace {

TEST(Scheduler, ParallelForCoversAllIndices) {
  util::Scheduler sched(4);
  std::vector<std::atomic<int>> hits(1000);
  sched.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Scheduler, ZeroCountIsNoop) {
  util::Scheduler sched(2);
  sched.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(Scheduler, SingleWorkerRunsEverythingInline) {
  util::Scheduler sched(1);
  std::vector<std::atomic<int>> hits(100);
  sched.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  std::atomic<int> x{0};
  sched.submit([&] { x = 7; }).get();
  EXPECT_EQ(x.load(), 7);
}

TEST(Scheduler, SubmitRunsAndCompletes) {
  util::Scheduler sched(2);
  std::atomic<int> x{0};
  auto f = sched.submit([&] { x = 42; });
  f.get();
  EXPECT_EQ(x.load(), 42);
}

TEST(Scheduler, SubmitFromManyExternalThreads) {
  util::Scheduler sched(3);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int> ran{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<std::future<void>> futures;
      futures.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        futures.push_back(sched.submit([&] { ran.fetch_add(1); }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ran.load(), kThreads * kPerThread);
}

TEST(Scheduler, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    util::Scheduler sched(2);
    for (int i = 0; i < 64; ++i) {
      sched.submit([&] { ran.fetch_add(1); });
    }
  }  // ~Scheduler joins after draining
  EXPECT_EQ(ran.load(), 64);
}

// Steal correctness: a worker pushes subtasks to its OWN deque and then
// busy-waits without helping; the only way the subtasks can run is another
// worker stealing them. Every subtask must run exactly once and the steal
// counter must move.
TEST(Scheduler, StealsExecuteEachTaskExactlyOnce) {
  util::Scheduler sched(2);
  constexpr int kSub = 64;
  std::vector<std::atomic<int>> hits(kSub);
  std::atomic<int> done{0};
  auto f = sched.submit([&] {
    // Runs on a worker: these pushes go to the worker's own deque.
    for (int i = 0; i < kSub; ++i) {
      sched.submit([&, i] {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
        done.fetch_add(1);
      });
    }
    // Busy-wait (not helping): the other worker must steal.
    while (done.load() < kSub) std::this_thread::yield();
  });
  f.get();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GE(sched.steals(), 1u);
}

TEST(Scheduler, NestedParallelForFromParallelFor) {
  util::Scheduler sched(3);
  std::atomic<int> total{0};
  sched.parallel_for(4, [&](std::size_t) {
    sched.parallel_for(50, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 200);
}

TEST(Scheduler, NestedParallelForFromSubmittedTask) {
  util::Scheduler sched(2);
  std::atomic<int> total{0};
  auto f = sched.submit([&] {
    sched.parallel_for(100, [&](std::size_t) { total.fetch_add(1); });
  });
  f.get();
  EXPECT_EQ(total.load(), 100);
}

TEST(Scheduler, ConcurrentParallelForsFromManyThreads) {
  util::Scheduler sched(4);
  constexpr int kThreads = 6;
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      sched.parallel_for(200, [&](std::size_t) { total.fetch_add(1); });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), kThreads * 200);
}

// Exception propagation: the first thrown exception surfaces to the caller,
// and EVERY claimed chunk joins before the throw — entered never exceeds
// exited once parallel_for returns, so no chunk can still be touching the
// (caller-owned) fn.
TEST(Scheduler, ExceptionPropagatesAfterFullJoin) {
  util::Scheduler sched(4);
  std::atomic<int> entered{0};
  std::atomic<int> exited{0};
  auto run = [&] {
    sched.parallel_for(300, [&](std::size_t i) {
      entered.fetch_add(1);
      if (i == 37) {
        exited.fetch_add(1);
        throw std::runtime_error("chunk failure");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      exited.fetch_add(1);
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  EXPECT_EQ(entered.load(), exited.load());
  // The scheduler survives: the same executor runs clean work afterwards.
  std::atomic<int> after{0};
  sched.parallel_for(100, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100);
}

TEST(Scheduler, ExceptionCancelsRemainingChunks) {
  util::Scheduler sched(2);
  std::atomic<int> ran{0};
  auto run = [&] {
    sched.parallel_for(100000, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 0) throw std::runtime_error("early");
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  // Cancellation is cooperative per chunk, so some chunks run — but nothing
  // close to the full range once the error is recorded.
  EXPECT_LT(ran.load(), 100000);
}

TEST(Scheduler, CounterSemantics) {
  util::Scheduler sched(2);
  EXPECT_EQ(sched.parallel_for_calls(), 0u);
  EXPECT_EQ(sched.tasks_submitted(), 0u);
  EXPECT_EQ(sched.steals(), 0u);

  sched.parallel_for(64, [](std::size_t) {});
  EXPECT_EQ(sched.parallel_for_calls(), 1u);
  const auto after_pf = sched.tasks_submitted();
  EXPECT_GE(after_pf, 1u);  // helper drain tasks

  sched.submit([] {}).get();
  EXPECT_EQ(sched.tasks_submitted(), after_pf + 1);
  EXPECT_GE(sched.queue_depth_max(), 1u);
  EXPECT_EQ(sched.size(), 2u);
}

// The Executor seam: campaign counts are bit-identical across executor
// implementations and worker counts — the scheduler changes WHERE trials
// run, never what they compute.
TEST(Scheduler, CampaignCountsMatchLegacyPoolAndAllSizes) {
  core::AnalysisSession session(apps::build_app("CG"));
  const auto& region = session.app().analysis_regions.front();
  fault::CampaignConfig cfg;
  cfg.trials = 24;
  cfg.seed = 12345;

  util::ThreadPool legacy(2);
  cfg.pool = &legacy;
  const auto baseline = session.region_campaign(
      region.id, 0, fault::TargetClass::Internal, cfg);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    util::Scheduler sched(workers);
    cfg.pool = &sched;
    const auto got = session.region_campaign(region.id, 0,
                                             fault::TargetClass::Internal, cfg);
    EXPECT_EQ(got.trials, baseline.trials) << workers;
    EXPECT_EQ(got.success, baseline.success) << workers;
    EXPECT_EQ(got.failed, baseline.failed) << workers;
    EXPECT_EQ(got.crashed, baseline.crashed) << workers;
    EXPECT_EQ(got.population_bits, baseline.population_bits) << workers;
  }
}

}  // namespace
}  // namespace ft
