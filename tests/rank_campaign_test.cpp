// Cross-rank campaign engine: golden enumeration determinism, the outcome
// taxonomy, 4-rank CG/MG/LULESH campaign determinism across pool sizes and
// ForkPolicy settings (the acceptance gate of the multi-rank engine), and
// the nranks entry of the analysis request schema.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "apps/app.h"
#include "core/analysis.h"
#include "fault/rank_campaign.h"
#include "hl/builder.h"
#include "vm/decode.h"

namespace ft {
namespace {

struct RankedApp {
  apps::AppSpec spec;
  std::shared_ptr<const vm::DecodedProgram> program;
};

const RankedApp& ranked_app(const std::string& name) {
  static std::map<std::string, RankedApp>* cache =
      new std::map<std::string, RankedApp>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    it = cache->emplace(name, RankedApp{apps::build_app(name), nullptr}).first;
    // Decode only after the spec has its final address: the decoded form
    // refers into the module it was decoded from.
    it->second.program = std::make_shared<const vm::DecodedProgram>(
        vm::DecodedProgram::decode(it->second.spec.module));
  }
  return it->second;
}

void expect_same_counts(const fault::RankCampaignResult& a,
                        const fault::RankCampaignResult& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.masked_locally, b.masked_locally);
  EXPECT_EQ(a.absorbed_by_collective, b.absorbed_by_collective);
  EXPECT_EQ(a.propagated, b.propagated);
  EXPECT_EQ(a.corrupted_output, b.corrupted_output);
  EXPECT_EQ(a.trapped, b.trapped);
  EXPECT_EQ(a.propagation_depth, b.propagation_depth);
  EXPECT_EQ(a.rank_trials, b.rank_trials);
  EXPECT_EQ(a.rank_success, b.rank_success);
}

TEST(RankEnumeration, GoldenPassIsDeterministic) {
  const auto& app = ranked_app("MG-RANKED");
  const auto a =
      fault::enumerate_rank_sites(app.program, 4, app.spec.base, false);
  const auto b =
      fault::enumerate_rank_sites(app.program, 4, app.spec.base, false);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  EXPECT_EQ(a.population_bits(), b.population_bits());
  EXPECT_EQ(a.fault_free_instructions, b.fault_free_instructions);
  EXPECT_EQ(a.first_comm_index, b.first_comm_index);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(a.golden_outputs[r], b.golden_outputs[r]);
    EXPECT_EQ(a.golden_comm[r], b.golden_comm[r]);
  }
  // Multi-rank golden execution verifies on every rank.
  for (std::size_t r = 0; r < 4; ++r) {
    ASSERT_FALSE(a.golden_outputs[r].empty());
    EXPECT_EQ(a.golden_outputs[r][0].as_i64(), 1) << "rank " << r;
  }
}

TEST(RankEnumeration, SitePopulationCoversEveryRank) {
  const auto& app = ranked_app("CG-RANKED");
  const auto en =
      fault::enumerate_rank_sites(app.program, 4, app.spec.base, false);
  std::size_t per_rank[4] = {0, 0, 0, 0};
  for (const auto& s : en.sites) {
    ASSERT_GE(s.rank, 0);
    ASSERT_LT(s.rank, 4);
    ASSERT_LT(s.dyn_index,
              en.fault_free_instructions[static_cast<std::size_t>(s.rank)]);
    per_rank[s.rank]++;
  }
  for (const auto n : per_rank) EXPECT_GT(n, 1000u);
}

// The acceptance gate: 4-rank CG, MG and LULESH campaigns produce
// deterministic cross-rank outcome counts, identical across pool sizes and
// ForkPolicy settings.
class RankedAppCampaign : public ::testing::TestWithParam<const char*> {};

TEST_P(RankedAppCampaign, FourRankCountsDeterministic) {
  const auto& app = ranked_app(GetParam());
  const auto en =
      fault::enumerate_rank_sites(app.program, 4, app.spec.base, false);
  fault::RankCampaignConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 24;
  const auto prepared =
      fault::prepare_rank_campaign(en, app.spec.base, cfg);
  ASSERT_EQ(prepared.plans.size(), 24u);
  auto prepared_nofork = prepared;
  prepared_nofork.fork.enabled = false;

  util::ThreadPool pool1(1), pool2(2), pool8(8);
  const auto a =
      fault::run_rank_campaign(*app.program, prepared, app.spec.verifier,
                               pool8);
  EXPECT_EQ(a.nranks, 4);
  EXPECT_EQ(a.masked_locally + a.absorbed_by_collective + a.propagated +
                a.corrupted_output + a.trapped,
            a.trials);
  // Depth histogram covers exactly the non-trapped trials.
  std::size_t depth_total = 0;
  for (const auto d : a.propagation_depth) depth_total += d;
  EXPECT_EQ(depth_total, a.trials - a.trapped);
  // Per-rank rollups re-add to the totals.
  std::size_t rank_total = 0, rank_good = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    rank_total += a.rank_trials[r];
    rank_good += a.rank_success[r];
  }
  EXPECT_EQ(rank_total, a.trials);
  EXPECT_EQ(rank_good, a.success());

  expect_same_counts(a, fault::run_rank_campaign(*app.program, prepared,
                                                 app.spec.verifier, pool1));
  expect_same_counts(a, fault::run_rank_campaign(*app.program, prepared,
                                                 app.spec.verifier, pool2));
  expect_same_counts(
      a, fault::run_rank_campaign(*app.program, prepared_nofork,
                                  app.spec.verifier, pool8));
}

INSTANTIATE_TEST_SUITE_P(Apps, RankedAppCampaign,
                         ::testing::Values("CG-RANKED", "MG-RANKED",
                                           "LULESH-RANKED"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(RankCampaignForking, PrefixReuseActiveWhereCommFreePrefixExists) {
  // CG-RANKED's replicated makea gives every rank a long communication-free
  // prefix: the rank-local scheduler must actually take snapshots and save
  // prefix work — without changing any count (covered above).
  const auto& app = ranked_app("CG-RANKED");
  const auto en =
      fault::enumerate_rank_sites(app.program, 4, app.spec.base, false);
  for (const auto fc : en.first_comm_index) EXPECT_GT(fc, 1000u);
  fault::RankCampaignConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 32;
  const auto prepared = fault::prepare_rank_campaign(en, app.spec.base, cfg);
  const auto snapshots =
      fault::prepare_rank_snapshots(*app.program, prepared);
  EXPECT_GT(snapshots.snapshots_taken, 0u);
  util::ThreadPool pool(4);
  const auto r =
      fault::run_rank_campaign(*app.program, prepared, app.spec.verifier,
                               pool);
  EXPECT_GT(r.snapshots_taken, 0u);
  EXPECT_GT(r.prefix_instructions_saved, 0u);
}

// ---------------------------------------------------------------------------
// The request schema: AnalysisSession::rank_campaign and
// AnalysisRequest::rank_campaign batching on the shared pool.
// ---------------------------------------------------------------------------

apps::AppSpec ring_spec() {
  hl::ProgramBuilder pb("ringapp");
  constexpr std::int64_t kCells = 16;
  auto g_a = pb.global_f64("a", kCells);
  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto rank = f.mpi_rank();
    auto size = f.mpi_size();
    auto lo = rank * kCells / size;
    auto hi = (rank + 1) * kCells / size;
    f.for_("j", lo, hi,
           [&](hl::Value j) { f.st(g_a, j, f.sitofp(j) * 0.5 + 1.0); });
    f.for_("it", 0, 4, [&](hl::Value) {
      f.region(r_main, [&] {
        auto part = f.var_f64("part", 0.0);
        f.for_("j", lo, hi,
               [&](hl::Value j) { part.set(part.get() + f.ld(g_a, j)); });
        auto total = f.mpi_allreduce(part.get(), ir::ReduceOp::Sum);
        f.for_("j", lo, hi, [&](hl::Value j) {
          f.st(g_a, j, f.ld(g_a, j) * 0.75 + total * 1e-3);
        });
      });
    });
    auto part = f.var_f64("part", 0.0);
    f.for_("j", lo, hi,
           [&](hl::Value j) { part.set(part.get() + f.ld(g_a, j)); });
    auto total = f.mpi_allreduce(part.get(), ir::ReduceOp::Sum);
    auto pass = f.select(f.fabs_(total).lt(1e6), f.c_i64(1), f.c_i64(0));
    f.emit(pass);
    f.emit(total);
    f.ret();
  }
  apps::AppSpec spec;
  spec.name = "ringapp";
  spec.analysis_regions = {{r_main, "main", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = 4;
  spec.verifier = apps::standard_verifier(1e-6);
  spec.module = pb.finish();
  return spec;
}

TEST(AnalysisRankCampaign, SessionAndBatchedRequestAgree) {
  fault::RankCampaignConfig cfg;
  cfg.nranks = 3;
  cfg.trials = 30;

  core::AnalysisSession session(ring_spec());
  const auto direct = session.rank_campaign(cfg);
  ASSERT_EQ(direct.trials, 30u);

  // Cached enumeration: same session, same counts on a re-run.
  expect_same_counts(direct, session.rank_campaign(cfg));

  // The declarative request: rank campaign + scalar region campaign batch
  // on one shared pool.
  fault::CampaignConfig scalar;
  scalar.trials = 20;
  util::ThreadPool pool(4);
  const auto request = core::AnalysisRequest()
                           .app(ring_spec())
                           .analysis_regions()
                           .success_rates(scalar)
                           .rank_campaign(cfg)
                           .pool(&pool);
  const auto report = core::run_analysis(request);
  ASSERT_EQ(report.apps.size(), 1u);
  ASSERT_TRUE(report.apps[0].rank_campaign.has_value());
  expect_same_counts(direct, *report.apps[0].rank_campaign);
  // Rank trials ride the same accounting as scalar trials.
  EXPECT_EQ(report.total_trials, 30u + 20u);
  EXPECT_EQ(report.campaign_units, 2u);
  EXPECT_EQ(report.pool_batches, 1u);  // still ONE batched dispatch
  EXPECT_GT(report.total_instructions, 0u);

  // Legacy per-unit scheduling produces the same counts.
  const auto legacy = core::run_analysis(
      core::AnalysisRequest()
          .app(ring_spec())
          .analysis_regions()
          .success_rates(scalar)
          .rank_campaign(cfg)
          .pool(&pool)
          .execution(core::ExecutionMode::LegacyPerRegion));
  ASSERT_TRUE(legacy.apps[0].rank_campaign.has_value());
  expect_same_counts(*report.apps[0].rank_campaign,
                     *legacy.apps[0].rank_campaign);
  const auto* entry = report.find("ringapp", "main",
                                  fault::TargetClass::Internal);
  const auto* legacy_entry = legacy.find("ringapp", "main",
                                         fault::TargetClass::Internal);
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(legacy_entry, nullptr);
  EXPECT_EQ(entry->campaign.success, legacy_entry->campaign.success);
  EXPECT_EQ(entry->campaign.failed, legacy_entry->campaign.failed);
  EXPECT_EQ(entry->campaign.crashed, legacy_entry->campaign.crashed);
}

TEST(AnalysisRankCampaign, SerialVsParallelComparisonShape) {
  // The Wu-et-al question end to end: the same ranked program campaigned at
  // world size 1 (the serial baseline — decomposition degenerates to the
  // full problem) and at world size 4. Both must be internally consistent;
  // the single-rank campaign can have no cross-rank propagation by
  // construction.
  core::AnalysisSession session(ring_spec());
  fault::RankCampaignConfig cfg;
  cfg.trials = 24;
  cfg.nranks = 1;
  const auto serial = session.rank_campaign(cfg);
  EXPECT_EQ(serial.trials, 24u);
  EXPECT_EQ(serial.propagated, 0u);
  for (std::size_t k = 1; k < serial.propagation_depth.size(); ++k) {
    EXPECT_EQ(serial.propagation_depth[k], 0u);
  }
  cfg.nranks = 4;
  const auto parallel = session.rank_campaign(cfg);
  EXPECT_EQ(parallel.trials, 24u);
  EXPECT_EQ(parallel.masked_locally + parallel.absorbed_by_collective +
                parallel.propagated + parallel.corrupted_output +
                parallel.trapped,
            parallel.trials);
}

}  // namespace
}  // namespace ft
