// Differential engine fuzzing: a seeded generator of random well-typed
// MiniIR programs (loops, branches, geps, calls, reductions over
// hl::ProgramBuilder) pins all execution engines and trace substrates
// against each other for bit-identical outputs and traces:
//
//   * legacy tree-walk vs decoded engine (observer traces record-by-record)
//   * DynInstr observer substrate vs columnar direct-emit substrate
//   * decoded straight-through vs decoded snapshot-forked (run_until +
//     snapshot-construct, and fork_from between two tracked machines)
//   * JIT native execution vs decoded/legacy (clean, under a random
//     ResultBit flip, snapshot interop in both directions, fork_from a
//     natively-advanced cursor) — trap kind, trap pc, retired count and
//     outputs all bit-identical
//
// Every generated program terminates by construction (loop trip counts are
// bounded constants) and is well-typed by construction (expressions are
// drawn from per-type pools; array indices are nonnegative-mod-size).
// Failures print the offending seed and the pretty-printed IR for triage.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "compose/compose.h"
#include "fault/campaign.h"
#include "fault/outcome.h"
#include "fault/sites.h"
#include "harden/harden.h"
#include "hl/builder.h"
#include "ir/print.h"
#include "jit/jit_program.h"
#include "store/artifact_store.h"
#include "store/trace_io.h"
#include "trace/collector.h"
#include "trace/column.h"
#include "trace/segment.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "vm/decode.h"
#include "vm/interp.h"

namespace ft {
namespace {

bool same_record(const vm::DynInstr& a, const vm::DynInstr& b,
                 std::string* why) {
  const auto fail = [&](const char* field) {
    if (why) *why = field;
    return false;
  };
  if (a.index != b.index) return fail("index");
  if (a.func != b.func || a.block != b.block || a.instr != b.instr) {
    return fail("static coordinates");
  }
  if (a.op != b.op) return fail("opcode");
  if (a.pred != b.pred) return fail("pred");
  if (a.type != b.type) return fail("type");
  if (a.nops != b.nops) return fail("nops");
  if (a.line != b.line) return fail("line");
  if (a.aux != b.aux) return fail("aux");
  if (a.result_loc != b.result_loc) return fail("result_loc");
  if (a.result_bits != b.result_bits) return fail("result_bits");
  for (unsigned i = 0; i < vm::kMaxTracedOps; ++i) {
    if (a.op_loc[i] != b.op_loc[i]) return fail("op_loc");
    if (a.op_bits[i] != b.op_bits[i]) return fail("op_bits");
    if (a.op_type[i] != b.op_type[i]) return fail("op_type");
  }
  if (a.mem_addr != b.mem_addr) return fail("mem_addr");
  if (a.mem_size != b.mem_size) return fail("mem_size");
  if (a.branch_taken != b.branch_taken) return fail("branch_taken");
  return true;
}

// ---------------------------------------------------------------------------
// The generator.
// ---------------------------------------------------------------------------

class ProgramGen {
 public:
  explicit ProgramGen(std::uint64_t seed)
      : rng_(seed), pb_("fuzz", __FILE__) {}

  ir::Module generate() {
    // Global arrays: a few f64 (one initialized from the seed stream) and
    // one i64 scratch array.
    const int n_arrays = 2 + static_cast<int>(rng_.below(2));
    for (int a = 0; a < n_arrays; ++a) {
      const auto size = static_cast<std::int64_t>(4 + rng_.below(12));
      if (a == 0) {
        std::vector<double> init(static_cast<std::size_t>(size));
        for (auto& v : init) v = rng_.uniform() * 8.0 - 4.0;
        arrays_.push_back(pb_.global_init_f64("g" + std::to_string(a), init));
      } else {
        arrays_.push_back(
            pb_.global_f64("g" + std::to_string(a), static_cast<std::uint64_t>(size)));
      }
      array_size_.push_back(size);
    }
    iarray_ = pb_.global_i64("gi", 8);

    // Optionally a helper function (f64 x, i64 i) -> f64, exercising Call
    // frames, Arg operands and cross-frame Ret commits.
    const bool with_helper = rng_.below(100) < 70;
    std::uint32_t helper = 0;
    if (with_helper) {
      helper = pb_.declare_function(
          "helper", ir::Type::F64,
          {ir::Param{ir::Type::F64, "x"}, ir::Param{ir::Type::I64, "i"}});
    }
    const auto f_main = pb_.declare_function("main");

    if (with_helper) {
      auto f = pb_.define(helper);
      f.at(__LINE__);
      auto x = f.arg(0);
      auto idx = f.arg(1) % array_size_[0];
      auto v = f.ld(arrays_[0], idx);
      auto y = x * 0.5 + v;
      // A branchy tail so helper activations shape control flow too.
      auto out = f.var_f64("out", 0.0);
      f.if_else(
          y.gt(0.0), [&] { out.set(y + 1.0); },
          [&] { out.set(y * -0.25); });
      f.ret(out.get());
      helper_ = helper;
      has_helper_ = true;
    }

    // The whole main body is one declared region so the hardening pass has
    // a protection target on every seed (tests/harden_test.cpp pins the
    // pass itself; the fuzz harness pins its clean-run transparency).
    const auto body_region = pb_.declare_region("body", 0, 0);
    {
      auto f = pb_.define(f_main);
      f.at(__LINE__);
      acc_ = f.var_f64("acc", 0.25);
      iacc_ = f.var_i64("iacc", 3);
      budget_ = 28 + static_cast<int>(rng_.below(40));
      f.region(body_region, [&] {
        block(f, /*depth=*/0, /*loop_vars=*/{});
        // Checksum reduction over every array so all stored state reaches
        // the outputs (a silent divergence cannot hide).
        for (std::size_t a = 0; a < arrays_.size(); ++a) {
          f.for_("ck" + std::to_string(a), 0, array_size_[a],
                 [&](hl::Value j) { acc_.set(acc_.get() + f.ld(arrays_[a], j)); });
        }
        f.for_("cki", 0, 8,
               [&](hl::Value j) { iacc_.set(iacc_.get() + f.ld(iarray_, j)); });
      });
      f.emit(acc_.get());
      f.emit(iacc_.get());
      f.ret();
    }
    return pb_.finish();
  }

 private:
  // A nonnegative i64 expression from loop variables and the integer
  // accumulator; used (mod size) as a safe array index.
  hl::Value int_expr(hl::FunctionBuilder& f,
                     const std::vector<hl::Value>& loop_vars) {
    hl::Value v = loop_vars.empty()
                      ? f.c_i64(static_cast<std::int64_t>(rng_.below(8)))
                      : loop_vars[rng_.below(loop_vars.size())];
    switch (rng_.below(4)) {
      case 0: return v + static_cast<std::int64_t>(rng_.below(5));
      case 1: return v * static_cast<std::int64_t>(1 + rng_.below(3));
      case 2:
        if (!loop_vars.empty()) {
          return v + loop_vars[rng_.below(loop_vars.size())];
        }
        return v;
      default: return v;
    }
  }

  hl::Value index_for(hl::FunctionBuilder& f, std::size_t array,
                      const std::vector<hl::Value>& loop_vars) {
    // Nonnegative dividend: SRem keeps the result in [0, size).
    return int_expr(f, loop_vars) % array_size_[array];
  }

  hl::Value float_expr(hl::FunctionBuilder& f,
                       const std::vector<hl::Value>& loop_vars, int depth) {
    switch (depth > 2 ? rng_.below(4) : rng_.below(9)) {
      case 0: return f.c_f64(rng_.uniform() * 4.0 - 2.0);
      case 1: return acc_.get();
      case 2: {
        const auto a = rng_.below(arrays_.size());
        return f.ld(arrays_[a], index_for(f, a, loop_vars));
      }
      case 3: return f.sitofp(int_expr(f, loop_vars));
      case 4:
        return float_expr(f, loop_vars, depth + 1) +
               float_expr(f, loop_vars, depth + 1);
      case 5:
        return float_expr(f, loop_vars, depth + 1) *
               float_expr(f, loop_vars, depth + 1);
      case 6: {
        auto c = float_expr(f, loop_vars, depth + 1)
                     .gt(float_expr(f, loop_vars, depth + 1));
        return f.select(c, float_expr(f, loop_vars, depth + 1),
                        float_expr(f, loop_vars, depth + 1));
      }
      case 7: return f.fsqrt(f.fabs_(float_expr(f, loop_vars, depth + 1)));
      default: {
        // Gep + raw load: pointer arithmetic over an array base.
        const auto a = rng_.below(arrays_.size());
        auto ptr = f.gep(f.addr_of(arrays_[a]), index_for(f, a, loop_vars),
                         8);
        return f.ld_raw(ptr, ir::Type::F64);
      }
    }
  }

  void statement(hl::FunctionBuilder& f,
                 const std::vector<hl::Value>& loop_vars, int depth) {
    budget_--;
    switch (rng_.below(8)) {
      case 0: {  // array store
        const auto a = rng_.below(arrays_.size());
        f.st(arrays_[a], index_for(f, a, loop_vars),
             float_expr(f, loop_vars, 0));
        break;
      }
      case 1:  // float reduction step
        acc_.set(acc_.get() + float_expr(f, loop_vars, 0));
        break;
      case 2: {  // integer scratch store + reduction
        auto idx = int_expr(f, loop_vars) % std::int64_t{8};
        f.st(iarray_, idx, int_expr(f, loop_vars));
        iacc_.set(iacc_.get() ^ int_expr(f, loop_vars));
        break;
      }
      case 3: {  // branch
        auto c = float_expr(f, loop_vars, 1).lt(float_expr(f, loop_vars, 1));
        if (rng_.below(2) == 0) {
          f.if_(c, [&] { block(f, depth + 1, loop_vars); });
        } else {
          f.if_else(
              c, [&] { block(f, depth + 1, loop_vars); },
              [&] { block(f, depth + 1, loop_vars); });
        }
        break;
      }
      case 4: {  // bounded counted loop
        if (depth >= 3) {
          acc_.set(acc_.get() * 0.5);
          break;
        }
        const auto trip = static_cast<std::int64_t>(1 + rng_.below(5));
        f.for_("i" + std::to_string(depth) + "_" +
                   std::to_string(budget_ < 0 ? 0 : budget_),
               0, trip, [&](hl::Value i) {
                 auto inner = loop_vars;
                 inner.push_back(i);
                 block(f, depth + 1, inner);
               });
        break;
      }
      case 5:  // helper call feeding the reduction
        if (has_helper_) {
          auto r = f.call(helper_,
                          {float_expr(f, loop_vars, 1),
                           int_expr(f, loop_vars)});
          acc_.set(acc_.get() + r);
        } else {
          acc_.set(acc_.get() - 0.125);
        }
        break;
      case 6: {  // raw gep store
        const auto a = rng_.below(arrays_.size());
        auto ptr =
            f.gep(f.addr_of(arrays_[a]), index_for(f, a, loop_vars), 8);
        f.st_raw(ptr, float_expr(f, loop_vars, 0));
        break;
      }
      default:  // randlc draw (exercises the RNG state in snapshots)
        acc_.set(acc_.get() + f.rand_() * 0.01);
        break;
    }
  }

  void block(hl::FunctionBuilder& f, int depth,
             const std::vector<hl::Value>& loop_vars) {
    const int stmts = 1 + static_cast<int>(rng_.below(depth == 0 ? 5 : 3));
    for (int s = 0; s < stmts && budget_ > 0; ++s) {
      statement(f, loop_vars, depth);
    }
  }

  util::Rng rng_;
  hl::ProgramBuilder pb_;
  std::vector<hl::GlobalArray> arrays_;
  std::vector<std::int64_t> array_size_;
  hl::GlobalArray iarray_;
  hl::Var acc_;
  hl::Var iacc_;
  std::uint32_t helper_ = 0;
  bool has_helper_ = false;
  int budget_ = 0;
};

// ---------------------------------------------------------------------------
// The differential harness.
// ---------------------------------------------------------------------------

/// Runs every engine/substrate combination on one generated program and
/// returns false (with a diagnostic) on the first divergence.
bool check_seed(std::uint64_t seed, std::string* diag) {
  std::ostringstream why;
  const ir::Module m = ProgramGen(seed).generate();
  const auto fail = [&](auto&&... parts) {
    (why << ... << parts);
    why << "\nseed " << seed << "\n" << ir::to_string(m);
    *diag = why.str();
    return false;
  };

  // Reference: legacy tree-walk with the DynInstr observer substrate.
  trace::TraceCollector legacy_tc;
  vm::VmOptions legacy_opts;
  legacy_opts.observer = &legacy_tc;
  const auto legacy = vm::Vm::run(m, legacy_opts);

  const auto program = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(m));

  // Decoded engine, observer substrate.
  trace::TraceCollector decoded_tc;
  vm::VmOptions decoded_opts;
  decoded_opts.observer = &decoded_tc;
  const auto decoded = vm::Vm::run(*program, decoded_opts);

  if (decoded.trap != legacy.trap) return fail("trap mismatch");
  if (decoded.instructions != legacy.instructions) {
    return fail("retired-count mismatch: legacy ", legacy.instructions,
                " decoded ", decoded.instructions);
  }
  if (decoded.outputs != legacy.outputs) return fail("outputs mismatch");
  if (legacy_tc.trace().size() != decoded_tc.trace().size()) {
    return fail("trace length mismatch");
  }
  for (std::size_t i = 0; i < legacy_tc.trace().size(); ++i) {
    std::string field;
    if (!same_record(legacy_tc.trace().records[i],
                     decoded_tc.trace().records[i], &field)) {
      return fail("legacy/decoded trace record ", i, " differs in ", field);
    }
  }

  // Columnar direct-emit substrate vs the observer records.
  trace::ColumnTrace sink(program);
  vm::VmOptions col_opts;
  col_opts.column_sink = &sink;
  const auto columnar = vm::Vm::run(*program, col_opts);
  if (columnar.outputs != decoded.outputs) {
    return fail("columnar outputs mismatch");
  }
  if (sink.size() != decoded_tc.trace().size()) {
    return fail("columnar trace length mismatch");
  }
  for (std::size_t i = 0; i < sink.size(); ++i) {
    std::string field;
    if (!same_record(decoded_tc.trace().records[i], sink.record(i), &field)) {
      return fail("observer/columnar record ", i, " differs in ", field);
    }
  }

  // On-disk round trip: serialize the columnar trace, mmap-load it back
  // (zero-copy adoption over the mapped segments), and pin every record
  // bit-identical to the in-memory trace it came from.
  {
    const std::string path = testing::TempDir() + "engine_fuzz_" +
                             std::to_string(seed) + ".fttrace";
    std::string err;
    if (!store::save_trace_file(path, sink, /*program_hash=*/seed, &err)) {
      return fail("trace save failed: ", err);
    }
    const auto loaded = store::load_trace_file(path, program, seed);
    std::remove(path.c_str());
    if (!loaded.trace) return fail("trace load failed: ", loaded.error);
    if (!loaded.trace->borrowed()) return fail("loaded trace not borrowed");
    if (loaded.trace->size() != sink.size()) {
      return fail("loaded trace length mismatch");
    }
    for (std::size_t i = 0; i < sink.size(); ++i) {
      std::string field;
      if (!same_record(sink.record(i), loaded.trace->record(i), &field)) {
        return fail("saved/loaded record ", i, " differs in ", field);
      }
    }
  }

  // Untraced decoded hot loop.
  if (vm::Vm::run(*program, {}).outputs != decoded.outputs) {
    return fail("untraced outputs mismatch");
  }

  // JIT native engine: untraced execution pinned against decoded/legacy —
  // trap kind, trap pc, retired count and outputs, clean and under a
  // randomly placed ResultBit flip — plus snapshot interop in both
  // directions and fork_from a natively-advanced golden cursor.
  const auto jit = jit::JitProgram::supported()
                       ? jit::JitProgram::compile(*program)
                       : nullptr;
  if (jit) {
    vm::VmOptions jo;
    jo.jit = jit.get();

    vm::Vm dv(*program, vm::VmOptions{});
    const auto dr = dv.run();
    vm::Vm jv(*program, jo);
    const auto jr = jv.run();
    if (jr.trap != dr.trap) return fail("jit trap mismatch");
    if (jv.next_pc() != dv.next_pc()) {
      return fail("jit trap-pc mismatch: decoded pc ", dv.next_pc(),
                  " jit pc ", jv.next_pc());
    }
    if (jr.instructions != dr.instructions) {
      return fail("jit retired-count mismatch: decoded ", dr.instructions,
                  " jit ", jr.instructions);
    }
    if (jr.outputs != dr.outputs) return fail("jit outputs mismatch");
    if (jr.outputs != legacy.outputs) {
      return fail("jit/legacy outputs mismatch");
    }

    if (legacy.instructions > 4) {
      util::Rng frng(seed * 0x9e3779b97f4a7c15ull + 1);
      const auto plan = vm::FaultPlan::result_bit(
          frng.below(legacy.instructions),
          static_cast<std::uint32_t>(frng.below(64)));
      vm::VmOptions fo_i;
      fo_i.fault = plan;
      auto fo_j = jo;
      fo_j.fault = plan;
      const auto fi = vm::Vm::run(*program, fo_i);
      const auto fj = vm::Vm::run(*program, fo_j);
      if (fi.trap != fj.trap || fi.instructions != fj.instructions ||
          fi.fault_fired != fj.fault_fired || fi.outputs != fj.outputs) {
        return fail("jit faulted-run mismatch at dyn_index ",
                    plan.dyn_index);
      }

      const std::uint64_t half = legacy.instructions / 2;
      vm::Vm jcur(*program, jo);
      jcur.run_until(half);
      if (jcur.status() == vm::Vm::Status::Running) {
        vm::Vm icur(*program, vm::VmOptions{});
        icur.run_until(half);
        if (!icur.state_equals(jcur.snapshot())) {
          return fail("jit/interp machine-state divergence at pause ", half);
        }
        vm::Vm tail_i(*program, jcur.snapshot(), {});
        if (tail_i.run().outputs != decoded.outputs) {
          return fail("jit-snapshot interpreter-tail outputs mismatch");
        }
        vm::Vm tail_j(*program, icur.snapshot(), jo);
        if (tail_j.run().outputs != decoded.outputs) {
          return fail("interp-snapshot jit-tail outputs mismatch");
        }

        auto tracked_j = jo;
        tracked_j.track_writes = true;
        vm::Vm jgolden(*program, tracked_j);
        jgolden.run_until(legacy.instructions / 3);
        vm::Vm jtrial(*program, tracked_j);
        jtrial.fork_from(jgolden, /*full=*/true);
        if (jtrial.run().outputs != decoded.outputs) {
          return fail("jit fork_from outputs mismatch");
        }
      }
    }
  }

  // Snapshot-forked: pause mid-run, snapshot, resume a fresh machine from
  // the snapshot, and fork a tracked machine from a tracked golden cursor.
  if (legacy.instructions > 4) {
    const std::uint64_t half = legacy.instructions / 2;
    vm::Vm cursor(*program, vm::VmOptions{});
    cursor.run_until(half);
    if (cursor.status() == vm::Vm::Status::Running) {
      const auto snap = cursor.snapshot();
      vm::Vm resumed(*program, snap, {});
      if (resumed.run().outputs != decoded.outputs) {
        return fail("snapshot-resumed outputs mismatch");
      }

      vm::VmOptions tracked;
      tracked.track_writes = true;
      vm::Vm golden(*program, tracked);
      golden.run_until(legacy.instructions / 3);
      vm::Vm trial(*program, tracked);
      trial.fork_from(golden, /*full=*/true);
      if (trial.run().outputs != decoded.outputs) {
        return fail("fork_from outputs mismatch");
      }
    }
  }

  // Composition leg: on every seed with a usable campaign, the composed
  // engine must report outcome counts bit-identical to the exhaustive
  // scheduler, and its section summaries must survive a save -> load round
  // trip through the artifact store (the warm re-run consumes exactly what
  // the cold run published). A mismatch names the offending section.
  if (legacy.trap == vm::TrapKind::None && legacy.instructions > 8) {
    const auto sites = fault::enumerate_whole_program_sites(*program, {});
    fault::CampaignConfig ccfg;
    ccfg.trials = 12;
    ccfg.seed = seed * 0x6C62272E07BB0142ull + 11;
    const auto prepared = fault::prepare_campaign(
        sites, fault::TargetClass::Internal, {}, ccfg);
    if (sites.region_found && !prepared.plans.empty()) {
      const auto instances = trace::segment_regions(sink);
      const auto verify = fault::tolerance_verifier(1e-9);
      util::ThreadPool pool(2);
      const auto exhaustive = fault::run_prepared_campaign(
          *program, prepared, decoded.outputs, verify, pool);
      const auto plan =
          compose::plan_sections(*program, sink, instances, prepared);

      const auto same = [](const fault::CampaignResult& a,
                           const fault::CampaignResult& b) {
        return a.success == b.success && a.failed == b.failed &&
               a.crashed == b.crashed &&
               a.detected_recovered == b.detected_recovered &&
               a.detected_unrecoverable == b.detected_unrecoverable;
      };
      const auto offending_section = [&]() -> std::string {
        for (std::size_t s = 0; s < plan.sections.size(); ++s) {
          if (plan.section_plans[s].empty()) continue;
          auto sub = prepared;
          sub.plans.clear();
          sub.fork_bounds.clear();
          for (const auto i : plan.section_plans[s]) {
            sub.plans.push_back(prepared.plans[i]);
            sub.fork_bounds.push_back(prepared.fork_bounds[i]);
          }
          const auto subplan =
              compose::plan_sections(*program, sink, instances, sub);
          const auto ex = fault::run_prepared_campaign(
              *program, sub, decoded.outputs, verify, pool);
          const auto co = compose::run_composed_campaign(
              *program, sub, subplan, decoded.outputs, verify, pool);
          if (!same(co.counts, ex)) return std::to_string(s);
        }
        return "unisolated (cross-section)";
      };

      const auto composed = compose::run_composed_campaign(
          *program, prepared, plan, decoded.outputs, verify, pool);
      if (!same(composed.counts, exhaustive)) {
        return fail("composed/exhaustive count mismatch, section ",
                    offending_section());
      }

      // Save -> load round trip: a cold store-backed run publishes every
      // summary; the warm re-run must decode them all (hits == computed)
      // and close with identical counts.
      std::string tmpl =
          (std::filesystem::temp_directory_path() / "ft-fuzz-XXXXXX");
      std::vector<char> buf(tmpl.begin(), tmpl.end());
      buf.push_back('\0');
      const std::string dir = mkdtemp(buf.data());
      {
        compose::ComposeOptions copts;
        copts.store = std::make_shared<store::ArtifactStore>(dir);
        copts.options_hash = store::hash_options({});
        copts.config = ccfg;
        const auto cold = compose::run_composed_campaign(
            *program, prepared, plan, decoded.outputs, verify, pool, copts);
        const auto warm = compose::run_composed_campaign(
            *program, prepared, plan, decoded.outputs, verify, pool, copts);
        std::filesystem::remove_all(dir);
        if (!same(cold.counts, exhaustive) || !same(warm.counts, exhaustive)) {
          return fail("store-backed composed count mismatch, section ",
                      offending_section());
        }
        if (warm.summary_store_hits != cold.summaries_computed) {
          return fail("summary round-trip loss: computed ",
                      cold.summaries_computed, " summaries, warm run hit ",
                      warm.summary_store_hits);
        }
      }
    }
  }

  // Hardened leg: the unguided pass protects the generated body region;
  // the emitted module must verify, and its clean run must be
  // output-bit-identical to the ORIGINAL program on all three engines
  // (the detectors may only observe, never perturb).
  {
    const auto hardened = harden::harden_module(m, harden::HardenConfig{});
    if (!hardened.verify_errors.empty()) {
      return fail("hardened module fails ir::verify: ",
                  hardened.verify_errors.front());
    }
    const auto hlegacy = vm::Vm::run(hardened.module);
    if (hlegacy.trap != legacy.trap) {
      return fail("hardened legacy trap mismatch: original ",
                  static_cast<int>(legacy.trap), " hardened ",
                  static_cast<int>(hlegacy.trap));
    }
    if (hlegacy.outputs != legacy.outputs) {
      return fail("hardened legacy outputs mismatch");
    }
    const auto hprogram = std::make_shared<const vm::DecodedProgram>(
        vm::DecodedProgram::decode(hardened.module));
    const auto hdecoded = vm::Vm::run(*hprogram, {});
    if (hdecoded.trap != hlegacy.trap ||
        hdecoded.instructions != hlegacy.instructions ||
        hdecoded.outputs != hlegacy.outputs) {
      return fail("hardened decoded/legacy divergence");
    }
    if (const auto hjit = jit::JitProgram::supported()
                              ? jit::JitProgram::compile(*hprogram)
                              : nullptr) {
      vm::VmOptions jo;
      jo.jit = hjit.get();
      const auto hj = vm::Vm::run(*hprogram, jo);
      if (hj.trap != hdecoded.trap ||
          hj.instructions != hdecoded.instructions ||
          hj.outputs != hdecoded.outputs) {
        return fail("hardened jit/decoded divergence");
      }
    }
  }
  return true;
}

TEST(EngineFuzz, TwoHundredSeedsAllEnginesAgree) {
  // Each seed generates one program; every engine pair must agree
  // bit-for-bit. On failure the diagnostic carries the seed and the IR.
  std::size_t trapped = 0;
  std::uint64_t total_instructions = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    std::string diag;
    const bool ok = check_seed(seed, &diag);
    ASSERT_TRUE(ok) << diag;
    // Cheap corpus stats so a degenerate generator (everything trapping
    // instantly) cannot pass silently.
    const ir::Module m = ProgramGen(seed).generate();
    const auto r = vm::Vm::run(m);
    total_instructions += r.instructions;
    if (!r.completed()) trapped++;
  }
  // The corpus must be substantial and mostly well-behaved.
  EXPECT_GT(total_instructions, 100000u);
  EXPECT_LT(trapped, 40u);
}

TEST(EngineFuzz, NoJitEnvironmentVariableDisablesRuntime) {
  // FT_VM_NO_JIT is the one switch that forces every JIT user back to the
  // interpreter; CI runs the full suite once with it set. Empty and "0"
  // keep the JIT on; anything else turns it off.
  if (!jit::JitProgram::supported()) GTEST_SKIP();
  ASSERT_EQ(setenv("FT_VM_NO_JIT", "1", 1), 0);
  EXPECT_FALSE(jit::JitProgram::runtime_enabled());
  ASSERT_EQ(setenv("FT_VM_NO_JIT", "0", 1), 0);
  EXPECT_TRUE(jit::JitProgram::runtime_enabled());
  ASSERT_EQ(setenv("FT_VM_NO_JIT", "", 1), 0);
  EXPECT_TRUE(jit::JitProgram::runtime_enabled());
  unsetenv("FT_VM_NO_JIT");
  EXPECT_TRUE(jit::JitProgram::runtime_enabled());
}

}  // namespace
}  // namespace ft
