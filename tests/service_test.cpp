// CampaignService (core/service.h): concurrent identical and distinct
// requests produce reports bit-identical to serial run_analysis, with the
// golden work deduplicated — proven by the trials_executed /
// golden_traced_instructions counters, not by timing. Also covers session
// sharing, progress streaming, storeless operation and failure isolation.
// Runs under the TSan CI job.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/service.h"
#include "fault/campaign.h"
#include "store/artifact_store.h"
#include "util/scheduler.h"

namespace ft {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = testing::TempDir() + "ft_service_XXXXXX";
    path = mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

fault::CampaignConfig small_campaign() {
  fault::CampaignConfig cfg;
  cfg.trials = 16;
  cfg.seed = 424242;
  return cfg;
}

core::AnalysisRequest app_request(const std::string& name) {
  return core::AnalysisRequest().app(name).app_campaign(small_campaign());
}

void expect_same_counts(const fault::CampaignResult& got,
                        const fault::CampaignResult& want) {
  EXPECT_EQ(got.trials, want.trials);
  EXPECT_EQ(got.success, want.success);
  EXPECT_EQ(got.failed, want.failed);
  EXPECT_EQ(got.crashed, want.crashed);
  EXPECT_EQ(got.detected_recovered, want.detected_recovered);
  EXPECT_EQ(got.detected_unrecoverable, want.detected_unrecoverable);
  EXPECT_EQ(got.population_bits, want.population_bits);
}

// The acceptance shape: N concurrent identical requests through one service
// yield counts bit-identical to a serial run_analysis, and the expensive
// work ran once — the summed trials_executed across all N equals the serial
// run's, and the golden trace was produced by exactly one session.
TEST(CampaignService, ConcurrentIdenticalRequestsMatchSerialWithDedup) {
  TempDir serial_dir;
  const auto baseline =
      core::run_analysis(app_request("CG").store_dir(serial_dir.path));
  ASSERT_TRUE(baseline.find_app("CG") != nullptr);
  ASSERT_TRUE(baseline.find_app("CG")->whole_app.has_value());
  ASSERT_GT(baseline.trials_executed, 0u);
  ASSERT_GT(baseline.golden_traced_instructions, 0u);

  constexpr int kRequests = 8;
  TempDir service_dir;
  util::Scheduler sched(4);
  core::ServiceOptions opts;
  opts.scheduler = &sched;
  opts.store_dir = service_dir.path;
  core::CampaignService service(opts);

  std::vector<std::future<core::AnalysisReport>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(service.submit(app_request("CG")));
  }

  std::size_t executed_sum = 0;
  for (auto& f : futures) {
    const auto report = f.get();
    const auto* app = report.find_app("CG");
    ASSERT_TRUE(app != nullptr);
    ASSERT_TRUE(app->whole_app.has_value());
    expect_same_counts(*app->whole_app,
                       *baseline.find_app("CG")->whole_app);
    executed_sum += report.trials_executed;
  }
  // Dedup proof 1: the trials ran once across all eight requests — every
  // other request was served by the store (waiting on the in-flight compute
  // when it overlapped), so the summed trials_executed equals the serial
  // run's, not eight times it.
  EXPECT_EQ(executed_sum, baseline.trials_executed);

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_admitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.requests_completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.requests_failed, 0u);
  EXPECT_EQ(stats.sessions_created, 1u);
  EXPECT_EQ(stats.sessions_shared, static_cast<std::uint64_t>(kRequests - 1));
  EXPECT_EQ(stats.inflight, 0u);

  // Dedup proof 2: ONE shared session served all eight requests and traced
  // the golden run exactly once — its lifetime traced-instruction counter
  // equals the serial run's per-request figure.
  EXPECT_EQ(service.session_for("CG")->traced_instructions_executed(),
            baseline.golden_traced_instructions);
}

// Distinct requests interleave on the same scheduler without contaminating
// each other: each app's counts match its own serial baseline.
TEST(CampaignService, DistinctConcurrentRequestsMatchTheirSerialRuns) {
  const auto base_cg = core::run_analysis(app_request("CG"));
  const auto base_mg = core::run_analysis(app_request("MG"));

  TempDir dir;
  util::Scheduler sched(4);
  core::ServiceOptions opts;
  opts.scheduler = &sched;
  opts.store_dir = dir.path;
  core::CampaignService service(opts);
  auto f_cg = service.submit(app_request("CG"));
  auto f_mg = service.submit(app_request("MG"));
  auto f_cg2 = service.submit(app_request("CG"));

  const auto r_cg = f_cg.get();
  const auto r_mg = f_mg.get();
  const auto r_cg2 = f_cg2.get();
  expect_same_counts(*r_cg.find_app("CG")->whole_app,
                     *base_cg.find_app("CG")->whole_app);
  expect_same_counts(*r_mg.find_app("MG")->whole_app,
                     *base_mg.find_app("MG")->whole_app);
  expect_same_counts(*r_cg2.find_app("CG")->whole_app,
                     *base_cg.find_app("CG")->whole_app);

  EXPECT_EQ(service.stats().sessions_created, 2u);  // CG and MG
}

TEST(CampaignService, SessionForSharesOneSessionPerName) {
  core::CampaignService service;
  auto a = service.session_for("CG");
  auto b = service.session_for("CG");
  EXPECT_EQ(a.get(), b.get());
  const auto stats = service.stats();
  EXPECT_EQ(stats.sessions_created, 1u);
  EXPECT_EQ(stats.sessions_shared, 1u);
}

TEST(CampaignService, StorelessServiceMatchesSerial) {
  const auto baseline = core::run_analysis(app_request("CG"));
  core::CampaignService service;  // no store, default scheduler
  const auto report = service.run(app_request("CG"));
  expect_same_counts(*report.find_app("CG")->whole_app,
                     *baseline.find_app("CG")->whole_app);
  EXPECT_FALSE(service.store());
}

// Progress streaming: snapshots are tagged with the request id, trials_done
// is monotone, and the final done == true snapshot carries the unit's exact
// report counts.
TEST(CampaignService, StreamsMonotoneProgressEndingInFinalCounts) {
  core::CampaignService service;
  std::mutex mu;
  std::vector<core::ServiceSnapshot> snaps;
  const auto report = service.run(
      app_request("CG"), [&](const core::ServiceSnapshot& s) {
        std::lock_guard lock(mu);
        snaps.push_back(s);
      });
  ASSERT_FALSE(snaps.empty());
  std::size_t prev_done = 0;
  for (const auto& s : snaps) {
    EXPECT_EQ(s.request_id, snaps.front().request_id);
    EXPECT_TRUE(s.unit.whole_app);
    EXPECT_EQ(s.unit.app, "CG");
    EXPECT_GE(s.unit.trials_done, prev_done);
    prev_done = s.unit.trials_done;
  }
  const auto& last = snaps.back();
  EXPECT_TRUE(last.unit.done);
  const auto& want = *report.find_app("CG")->whole_app;
  EXPECT_EQ(last.unit.trials_done, want.trials);
  EXPECT_EQ(last.unit.success, want.success);
  EXPECT_EQ(last.unit.failed, want.failed);
  EXPECT_EQ(last.unit.crashed, want.crashed);
}

// A failing request resolves its future with the thrown exception and does
// not wedge the service: subsequent requests still complete.
TEST(CampaignService, FailedRequestPropagatesAndServiceSurvives) {
  core::CampaignService service;
  auto bad = service.submit(app_request("NO-SUCH-APP"));
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(service.stats().requests_failed, 1u);

  const auto report = service.run(app_request("CG"));
  EXPECT_TRUE(report.find_app("CG")->whole_app.has_value());
  EXPECT_EQ(service.stats().requests_completed, 1u);
}

}  // namespace
}  // namespace ft
