// Decode-equivalence coverage: the decoded engine (vm/decode.h + the
// decoded Vm paths) must be bit-identical to the legacy tree-walking
// engine — record by record when stepped, and in outputs / trap kind /
// fault-fired flag / retired count when run to completion (the untraced
// hot loop). Pinned for all ten workloads, clean and faulted, plus the
// lockstep diff_run overloads and the decoded-program structure itself.
#include <gtest/gtest.h>

#include <sstream>

#include "acl/diff.h"
#include "apps/app.h"
#include "hl/builder.h"
#include "trace/collector.h"
#include "vm/decode.h"
#include "vm/interp.h"

namespace ft {
namespace {

bool same_record(const vm::DynInstr& a, const vm::DynInstr& b) {
  return a.index == b.index && a.func == b.func && a.block == b.block &&
         a.instr == b.instr && a.op == b.op && a.pred == b.pred &&
         a.type == b.type && a.nops == b.nops && a.line == b.line &&
         a.aux == b.aux && a.result_loc == b.result_loc &&
         a.result_bits == b.result_bits && a.op_loc == b.op_loc &&
         a.op_bits == b.op_bits && a.op_type == b.op_type &&
         a.mem_addr == b.mem_addr && a.mem_size == b.mem_size &&
         a.branch_taken == b.branch_taken;
}

std::string describe(const vm::DynInstr& d) {
  std::ostringstream os;
  os << "index=" << d.index << " op=" << ir::opcode_name(d.op)
     << " func=" << d.func << " block=" << d.block << " instr=" << d.instr
     << " result_bits=" << d.result_bits << " result_loc=" << d.result_loc;
  return os.str();
}

/// Step a legacy and a decoded Vm in lockstep and require a bit-identical
/// record stream and identical end state.
void expect_lockstep_identical(const ir::Module& m,
                               const vm::DecodedProgram& prog,
                               const vm::VmOptions& opts) {
  vm::Vm legacy(m, opts);
  vm::Vm decoded(prog, opts);
  vm::DynInstr rl, rd;
  std::uint64_t mismatches = 0;
  while (true) {
    const auto sl = legacy.step(&rl);
    const auto sd = decoded.step(&rd);
    ASSERT_EQ(sl, sd) << "engine status diverged at instruction "
                      << legacy.instructions_retired();
    if (sl != vm::Vm::Status::Running) break;
    if (!same_record(rl, rd) && mismatches++ < 5) {
      ADD_FAILURE() << "record mismatch:\n  legacy : " << describe(rl)
                    << "\n  decoded: " << describe(rd);
    }
  }
  EXPECT_EQ(mismatches, 0u);
  const auto fl = legacy.take_result();
  const auto fd = decoded.take_result();
  EXPECT_EQ(fl.trap, fd.trap);
  EXPECT_EQ(fl.instructions, fd.instructions);
  EXPECT_EQ(fl.fault_fired, fd.fault_fired);
  EXPECT_TRUE(fl.outputs == fd.outputs);
}

/// Run both engines to completion on their untraced fast paths (the hot
/// loop on the decoded side) and require identical results.
void expect_runs_identical(const ir::Module& m,
                           const vm::DecodedProgram& prog,
                           const vm::VmOptions& opts) {
  const auto rl = vm::Vm::run(m, opts);
  const auto rd = vm::Vm::run(prog, opts);
  EXPECT_EQ(rl.trap, rd.trap);
  EXPECT_EQ(rl.instructions, rd.instructions);
  EXPECT_EQ(rl.fault_fired, rd.fault_fired);
  EXPECT_TRUE(rl.outputs == rd.outputs);
}

class DecodeEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(DecodeEquivalence, CleanRunBitIdentical) {
  const auto app = apps::build_app(GetParam());
  const auto prog = vm::DecodedProgram::decode(app.module);
  expect_lockstep_identical(app.module, prog, app.base);
  expect_runs_identical(app.module, prog, app.base);
}

TEST_P(DecodeEquivalence, FaultedRunsBitIdentical) {
  const auto app = apps::build_app(GetParam());
  const auto prog = vm::DecodedProgram::decode(app.module);

  // A mid-run register-commit flip (traced lockstep + untraced hot loop)...
  vm::VmOptions faulted = app.base;
  faulted.fault = vm::FaultPlan::result_bit(/*dyn_index=*/40000, /*bit=*/40);
  expect_lockstep_identical(app.module, prog, faulted);
  expect_runs_identical(app.module, prog, faulted);

  // ...high-bit flips that often trap (OutOfBounds / hang budget paths)...
  vm::VmOptions crashy = app.base;
  crashy.fault = vm::FaultPlan::result_bit(/*dyn_index=*/5000, /*bit=*/62);
  crashy.max_instructions = 400000;  // exercise the hang trap identically
  expect_runs_identical(app.module, prog, crashy);

  // ...and a region-input memory flip at a region entry.
  if (app.main_region != ~std::uint32_t{0} &&
      app.module.num_globals() > 0) {
    const auto& g = app.module.global(0);
    vm::VmOptions region_fault = app.base;
    region_fault.fault = vm::FaultPlan::region_input_bit(
        app.main_region, 0, g.addr, store_size(g.elem), 17);
    expect_runs_identical(app.module, prog, region_fault);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, DecodeEquivalence,
                         ::testing::ValuesIn(apps::all_app_names()),
                         [](const auto& info) { return info.param; });

// --- lockstep diff equivalence -------------------------------------------------

TEST(DecodeDiff, DiffRunMatchesLegacyOverload) {
  const auto app = apps::build_cg();
  const auto prog = vm::DecodedProgram::decode(app.module);
  acl::DiffOptions opts;
  opts.base = app.base;
  opts.fault = vm::FaultPlan::result_bit(20000, 33);
  opts.max_records = 50000;

  const auto dl = acl::diff_run(app.module, opts);
  const auto dd = acl::diff_run(prog, opts);
  EXPECT_EQ(dl.divergence_index, dd.divergence_index);
  EXPECT_EQ(dl.truncated, dd.truncated);
  EXPECT_EQ(dl.clean_result.trap, dd.clean_result.trap);
  EXPECT_EQ(dl.faulty_result.trap, dd.faulty_result.trap);
  EXPECT_EQ(dl.faulty_result.instructions, dd.faulty_result.instructions);
  EXPECT_TRUE(dl.clean_result.outputs == dd.clean_result.outputs);
  EXPECT_TRUE(dl.faulty_result.outputs == dd.faulty_result.outputs);
  ASSERT_EQ(dl.usable_records(), dd.usable_records());
  EXPECT_TRUE(dl.clean_bits == dd.clean_bits);
  EXPECT_TRUE(dl.differs == dd.differs);
  ASSERT_EQ(dl.faulty.records.size(), dd.faulty.records.size());
  for (std::size_t i = 0; i < dl.faulty.records.size(); ++i) {
    ASSERT_TRUE(same_record(dl.faulty.records[i], dd.faulty.records[i]))
        << "at record " << i;
  }
}

// --- traced-run / observer-gating equivalence ----------------------------------

TEST(DecodeTrace, GatedObserverSeesIdenticalWindow) {
  const auto app = apps::build_sp();
  const auto prog = vm::DecodedProgram::decode(app.module);

  const auto windowed = [&](auto&& executable) {
    trace::TraceCollector sink;
    vm::RegionWindowGate gate(&sink, app.main_region, /*instance=*/1);
    vm::VmOptions opts = app.base;
    opts.observer = &gate;
    (void)vm::Vm::run(executable, opts);
    return sink.take();
  };
  const auto tl = windowed(app.module);
  const auto td = windowed(prog);
  ASSERT_EQ(tl.size(), td.size());
  ASSERT_FALSE(tl.empty());
  for (std::size_t i = 0; i < tl.size(); ++i) {
    ASSERT_TRUE(same_record(tl.records[i], td.records[i])) << "at " << i;
  }
}

// --- decoded-program structure -------------------------------------------------

TEST(DecodedProgram, FlattensModulesWithDenseTargets) {
  hl::ProgramBuilder pb("t");
  const auto helper = pb.declare_function("helper", ir::Type::I64,
                                          {{ir::Type::I64, "x"}});
  {
    auto f = pb.define(helper);
    f.ret(f.arg(0) + 1);
  }
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto s = f.var_i64("s", 0);
    f.for_("i", 0, 10, [&](hl::Value i) {
      s.set(s.get() + f.call(helper, {i}));
    });
    f.emit(s.get());
    f.ret();
  }
  const auto mod = pb.finish();
  const auto prog = vm::DecodedProgram::decode(mod);

  // One decoded instruction per static instruction, flat and in order.
  std::size_t total = 0;
  for (std::uint32_t f = 0; f < mod.num_functions(); ++f) {
    total += mod.function(f).instruction_count();
  }
  EXPECT_EQ(prog.code_size(), total);
  EXPECT_EQ(prog.entry_function(), mod.entry());

  for (std::size_t pc = 0; pc < prog.code_size(); ++pc) {
    const auto& d = prog.code()[pc];
    // Static coordinates round-trip to the original instruction.
    const auto& ins = mod.function(d.func).blocks[d.block].instrs[d.instr];
    EXPECT_EQ(d.op, ins.op);
    EXPECT_EQ(d.result, ins.result);
    EXPECT_EQ(static_cast<std::size_t>(d.src_count), ins.ops.size());
    // Branch targets land on the first instruction of a block of the same
    // function.
    if (d.op == ir::Opcode::Br || d.op == ir::Opcode::CondBr) {
      const auto& target = prog.code()[d.target_taken];
      EXPECT_EQ(target.func, d.func);
      EXPECT_EQ(target.instr, 0u);
    }
  }

  // Executing the decoded form is identical (calls included).
  expect_lockstep_identical(mod, prog, {});
}

TEST(DecodedProgram, ImmediatesArePreCanonicalized) {
  hl::ProgramBuilder pb("t");
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto s = f.var_i64("s", -7);
    s.set(s.get() * 3);
    f.emit(s.get());
    f.ret();
  }
  const auto mod = pb.finish();
  const auto prog = vm::DecodedProgram::decode(mod);
  // Every constant operand carries fully-resolved bits: re-canonicalizing
  // is a no-op, and no operand kind needs module lookups at run time.
  for (std::size_t pc = 0; pc < prog.code_size(); ++pc) {
    const auto& d = prog.code()[pc];
    for (std::uint32_t i = 0; i < d.src_count; ++i) {
      const auto& s = prog.srcs()[d.src_begin + i];
      if (s.kind == vm::SrcKind::Const && is_int(s.type)) {
        EXPECT_EQ(s.bits, vm::canon_int(s.bits, s.type));
      }
    }
  }
}

}  // namespace
}  // namespace ft
