// Trace layer: collection, binary file round-trips, region segmentation
// (nesting, crash truncation), location events, opcode statistics.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "hl/builder.h"
#include "trace/collector.h"
#include "trace/events.h"
#include "trace/file.h"
#include "trace/segment.h"
#include "trace/stats.h"
#include "vm/interp.h"

namespace ft {
namespace {

ir::Module looped_regions(std::uint32_t* outer_id, std::uint32_t* inner_id) {
  hl::ProgramBuilder pb("t");
  const auto outer = pb.declare_region("outer", 0, 0);
  const auto inner = pb.declare_region("inner", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.for_("i", 0, 3, [&](hl::Value) {
      f.region(outer, [&] {
        f.for_("j", 0, 2, [&](hl::Value) {
          f.region(inner, [&] { f.emit(f.c_i64(1)); });
        });
      });
    });
    f.ret();
  }
  *outer_id = outer;
  *inner_id = inner;
  return pb.finish();
}

trace::Trace run_traced(const ir::Module& m) {
  trace::TraceCollector c;
  vm::VmOptions opts;
  opts.observer = &c;
  const auto r = vm::Vm::run(m, opts);
  EXPECT_TRUE(r.completed());
  return c.take();
}

TEST(Segmentation, CountsNestedInstances) {
  std::uint32_t outer, inner;
  auto mod = looped_regions(&outer, &inner);
  const auto tr = run_traced(mod);
  const auto insts = trace::segment_regions(tr.span());

  const auto outer_insts = trace::instances_of(insts, outer);
  const auto inner_insts = trace::instances_of(insts, inner);
  ASSERT_EQ(outer_insts.size(), 3u);
  ASSERT_EQ(inner_insts.size(), 6u);
  for (const auto& i : outer_insts) EXPECT_TRUE(i.complete);
  for (const auto& i : inner_insts) EXPECT_TRUE(i.complete);

  // Instance numbering is dense and ordered.
  for (std::size_t k = 0; k < outer_insts.size(); ++k) {
    EXPECT_EQ(outer_insts[k].instance, k);
    EXPECT_LT(outer_insts[k].enter_index, outer_insts[k].exit_index);
  }
  // Inner instances nest strictly inside some outer instance.
  for (const auto& in : inner_insts) {
    bool nested = false;
    for (const auto& out : outer_insts) {
      if (in.enter_index > out.enter_index &&
          in.exit_index < out.exit_index) {
        nested = true;
      }
    }
    EXPECT_TRUE(nested);
  }
}

TEST(Segmentation, FindInstance) {
  std::uint32_t outer, inner;
  auto mod = looped_regions(&outer, &inner);
  const auto tr = run_traced(mod);
  const auto insts = trace::segment_regions(tr.span());
  const auto second = trace::find_instance(insts, outer, 1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->instance, 1u);
  EXPECT_FALSE(trace::find_instance(insts, outer, 99).has_value());
}

TEST(Segmentation, CrashTruncatedRegionIsIncomplete) {
  hl::ProgramBuilder pb("t");
  auto arr = pb.global_f64("arr", 2);
  const auto rid = pb.declare_region("r", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.region(rid, [&] {
      f.emit(f.ld(arr, 1000000));  // traps inside the region
    });
    f.ret();
  }
  auto mod = pb.finish();
  trace::TraceCollector c;
  trace::RegionSegmenter seg;
  vm::MultiObserver multi;
  multi.add(&c);
  multi.add(&seg);
  vm::VmOptions opts;
  opts.observer = &multi;
  const auto r = vm::Vm::run(mod, opts);
  EXPECT_EQ(r.trap, vm::TrapKind::OutOfBounds);
  seg.finish();
  const auto insts = seg.instances();
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_FALSE(insts[0].complete);
}

TEST(TraceSlice, SelectsByDynamicIndex) {
  std::uint32_t outer, inner;
  auto mod = looped_regions(&outer, &inner);
  const auto tr = run_traced(mod);
  const auto insts = trace::segment_regions(tr.span());
  const auto first = trace::find_instance(insts, outer, 0).value();
  const auto slice = tr.slice(first.body_begin(), first.body_end());
  EXPECT_EQ(slice.size(), first.body_length());
  for (const auto& r : slice) {
    EXPECT_GE(r.index, first.body_begin());
    EXPECT_LT(r.index, first.body_end());
  }
  EXPECT_TRUE(tr.slice(5, 5).empty());
}

TEST(TraceFile, RoundTrip) {
  std::uint32_t outer, inner;
  auto mod = looped_regions(&outer, &inner);
  const auto tr = run_traced(mod);

  const auto path = std::filesystem::temp_directory_path() / "ft_trace_test.fttrace";
  ASSERT_TRUE(trace::write_trace_file(path.string(), tr));
  trace::Trace loaded;
  ASSERT_TRUE(trace::read_trace_file(path.string(), loaded));
  ASSERT_EQ(loaded.size(), tr.size());
  for (std::size_t i = 0; i < tr.size(); ++i) {
    EXPECT_EQ(loaded.records[i].index, tr.records[i].index);
    EXPECT_EQ(loaded.records[i].op, tr.records[i].op);
    EXPECT_EQ(loaded.records[i].result_bits, tr.records[i].result_bits);
    EXPECT_EQ(loaded.records[i].result_loc, tr.records[i].result_loc);
  }
  std::filesystem::remove(path);
}

TEST(TraceFile, RejectsGarbage) {
  const auto path = std::filesystem::temp_directory_path() / "ft_garbage.fttrace";
  {
    std::FILE* f = std::fopen(path.string().c_str(), "wb");
    std::fputs("not a trace", f);
    std::fclose(f);
  }
  trace::Trace t;
  EXPECT_FALSE(trace::read_trace_file(path.string(), t));
  EXPECT_FALSE(trace::read_trace_file("/nonexistent/nope", t));
  std::filesystem::remove(path);
}

TEST(TraceCollector, CapTruncates) {
  std::uint32_t outer, inner;
  auto mod = looped_regions(&outer, &inner);
  trace::TraceCollector c(10);
  vm::VmOptions opts;
  opts.observer = &c;
  (void)vm::Vm::run(mod, opts);
  EXPECT_EQ(c.trace().size(), 10u);
  EXPECT_TRUE(c.truncated());
}

TEST(LocationEvents, QueriesFollowReadsAndWrites) {
  // Hand-built stream: loc written at 0, read at 2, written at 4.
  std::vector<vm::DynInstr> records(5);
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].index = i;
    records[i].op = ir::Opcode::Store;
  }
  constexpr vm::Location loc = 128;
  records[0].result_loc = loc;
  records[2].op_loc[0] = loc;
  records[2].nops = 1;
  records[2].result_loc = 300;
  records[4].result_loc = loc;

  const auto ev = trace::LocationEvents::build(records);
  EXPECT_EQ(ev.next_read_after(loc, 0), 2u);
  EXPECT_EQ(ev.next_write_after(loc, 0), 4u);
  EXPECT_EQ(ev.next_read_after(loc, 2), trace::LocationEvents::kNoIndex);
  EXPECT_TRUE(ev.touched_after(loc, 3));
  EXPECT_FALSE(ev.touched_after(loc, 4));
  EXPECT_EQ(ev.read_before_overwrite_after(loc, 0), 2u);
  EXPECT_EQ(ev.read_before_overwrite_after(loc, 2),
            trace::LocationEvents::kNoIndex);  // next event is a write
  EXPECT_EQ(ev.next_read_after(999, 0), trace::LocationEvents::kNoIndex);
}

TEST(Stats, OpcodeMixCountsEverything) {
  std::uint32_t outer, inner;
  auto mod = looped_regions(&outer, &inner);
  const auto tr = run_traced(mod);
  const auto mix = trace::opcode_mix(tr.span());
  EXPECT_EQ(mix.total, tr.size());
  EXPECT_GT(mix.of(ir::Opcode::RegionEnter), 0u);
  EXPECT_EQ(mix.of(ir::Opcode::RegionEnter), mix.of(ir::Opcode::RegionExit));
  EXPECT_GT(mix.of(ir::Opcode::CondBr), 0u);
}

TEST(Stats, InstructionsInRegion) {
  std::uint32_t outer, inner;
  auto mod = looped_regions(&outer, &inner);
  const auto tr = run_traced(mod);
  const auto insts = trace::segment_regions(tr.span());
  const auto first_inner = trace::find_instance(insts, inner, 0).value();
  EXPECT_EQ(trace::instructions_in(first_inner), first_inner.body_length());
  EXPECT_GT(first_inner.body_length(), 0u);
}

}  // namespace
}  // namespace ft
