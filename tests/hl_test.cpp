// Tests for the high-level builder: every control-flow construct and
// expression form must lower to valid MiniIR that computes the same result
// the equivalent C code would.
#include <gtest/gtest.h>

#include "hl/builder.h"
#include "ir/print.h"
#include "ir/verify.h"
#include "vm/interp.h"

namespace ft {
namespace {

/// Build a module whose main emits values via `body`, run it, return
/// outputs. The body receives the FunctionBuilder.
std::vector<vm::OutputValue> run_program(
    const std::function<void(hl::FunctionBuilder&)>& body) {
  hl::ProgramBuilder pb("t");
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    body(f);
    f.ret();
  }
  auto mod = pb.finish();
  const auto errs = ir::verify(mod);
  EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs[0]);
  const auto r = vm::Vm::run(mod);
  EXPECT_TRUE(r.completed()) << trap_name(r.trap);
  return r.outputs;
}

TEST(HlBuilder, ArithmeticInt) {
  const auto out = run_program([](hl::FunctionBuilder& f) {
    auto a = f.var_i64("a", 7);
    auto b = f.var_i64("b", 3);
    f.emit(a.get() + b.get());
    f.emit(a.get() - b.get());
    f.emit(a.get() * b.get());
    f.emit(a.get() / b.get());
    f.emit(a.get() % b.get());
  });
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].as_i64(), 10);
  EXPECT_EQ(out[1].as_i64(), 4);
  EXPECT_EQ(out[2].as_i64(), 21);
  EXPECT_EQ(out[3].as_i64(), 2);
  EXPECT_EQ(out[4].as_i64(), 1);
}

TEST(HlBuilder, ArithmeticFloat) {
  const auto out = run_program([](hl::FunctionBuilder& f) {
    auto a = f.var_f64("a", 1.5);
    f.emit(a.get() + 2.5);
    f.emit(a.get() * 2.0);
    f.emit(f.fsqrt(f.c_f64(9.0)));
    f.emit(f.fabs_(f.c_f64(-4.0)));
    f.emit(f.ffloor(f.c_f64(2.9)));
    f.emit(f.neg(a.get()));
  });
  EXPECT_DOUBLE_EQ(out[0].as_f64(), 4.0);
  EXPECT_DOUBLE_EQ(out[1].as_f64(), 3.0);
  EXPECT_DOUBLE_EQ(out[2].as_f64(), 3.0);
  EXPECT_DOUBLE_EQ(out[3].as_f64(), 4.0);
  EXPECT_DOUBLE_EQ(out[4].as_f64(), 2.0);
  EXPECT_DOUBLE_EQ(out[5].as_f64(), -1.5);
}

TEST(HlBuilder, BitwiseAndShifts) {
  const auto out = run_program([](hl::FunctionBuilder& f) {
    auto a = f.var_i64("a", 0b1100);
    f.emit(a.get() & 0b1010);
    f.emit(a.get() | 0b0011);
    f.emit(a.get() ^ 0b1111);
    f.emit(a.get() << 2);
    f.emit(a.get() >> 1);
    f.emit(f.lshr(a.get(), 2));
  });
  EXPECT_EQ(out[0].as_i64(), 0b1000);
  EXPECT_EQ(out[1].as_i64(), 0b1111);
  EXPECT_EQ(out[2].as_i64(), 0b0011);
  EXPECT_EQ(out[3].as_i64(), 0b110000);
  EXPECT_EQ(out[4].as_i64(), 0b110);
  EXPECT_EQ(out[5].as_i64(), 0b11);
}

TEST(HlBuilder, ForLoopSum) {
  const auto out = run_program([](hl::FunctionBuilder& f) {
    auto sum = f.var_i64("sum", 0);
    f.for_("i", 0, 100, [&](hl::Value i) { sum.set(sum.get() + i); });
    f.emit(sum.get());
  });
  EXPECT_EQ(out[0].as_i64(), 4950);
}

TEST(HlBuilder, NestedLoops) {
  const auto out = run_program([](hl::FunctionBuilder& f) {
    auto sum = f.var_i64("sum", 0);
    f.for_("i", 0, 10, [&](hl::Value i) {
      f.for_("j", 0, 10, [&](hl::Value j) {
        sum.set(sum.get() + i * 10 + j);
      });
    });
    f.emit(sum.get());
  });
  EXPECT_EQ(out[0].as_i64(), 4950);
}

TEST(HlBuilder, WhileLoop) {
  const auto out = run_program([](hl::FunctionBuilder& f) {
    auto x = f.var_i64("x", 1);
    f.while_([&] { return x.get().lt(100); },
             [&] { x.set(x.get() * 2); });
    f.emit(x.get());
  });
  EXPECT_EQ(out[0].as_i64(), 128);
}

TEST(HlBuilder, IfElse) {
  const auto out = run_program([](hl::FunctionBuilder& f) {
    auto x = f.var_i64("x", 5);
    auto y = f.var_i64("y", 0);
    f.if_else(x.get().gt(3), [&] { y.set(1); }, [&] { y.set(2); });
    f.emit(y.get());
    f.if_else(x.get().gt(10), [&] { y.set(3); }, [&] { y.set(4); });
    f.emit(y.get());
    f.if_(x.get().eq(5), [&] { y.set(7); });
    f.emit(y.get());
    f.unless(x.get().eq(5), [&] { y.set(9); });
    f.emit(y.get());
  });
  EXPECT_EQ(out[0].as_i64(), 1);
  EXPECT_EQ(out[1].as_i64(), 4);
  EXPECT_EQ(out[2].as_i64(), 7);
  EXPECT_EQ(out[3].as_i64(), 7);  // unless body skipped
}

TEST(HlBuilder, SelectMinMax) {
  const auto out = run_program([](hl::FunctionBuilder& f) {
    auto a = f.c_f64(2.0);
    auto b = f.c_f64(5.0);
    f.emit(f.min_(a, b));
    f.emit(f.max_(a, b));
    f.emit(f.select(f.c_bool(true), f.c_i64(1), f.c_i64(2)));
  });
  EXPECT_DOUBLE_EQ(out[0].as_f64(), 2.0);
  EXPECT_DOUBLE_EQ(out[1].as_f64(), 5.0);
  EXPECT_EQ(out[2].as_i64(), 1);
}

TEST(HlBuilder, GlobalArrays) {
  hl::ProgramBuilder pb("t");
  auto arr = pb.global_init_f64("arr", {1.0, 2.0, 3.0});
  auto iarr = pb.global_init_i64("iarr", {10, 20, 30});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.st(arr, 1, f.c_f64(9.0));
    auto sum = f.var_f64("sum", 0.0);
    f.for_("i", 0, 3, [&](hl::Value i) { sum.set(sum.get() + f.ld(arr, i)); });
    f.emit(sum.get());
    f.emit(f.ld(iarr, 2));
    f.ret();
  }
  auto mod = pb.finish();
  const auto r = vm::Vm::run(mod);
  ASSERT_TRUE(r.completed());
  EXPECT_DOUBLE_EQ(r.outputs[0].as_f64(), 13.0);
  EXPECT_EQ(r.outputs[1].as_i64(), 30);
}

TEST(HlBuilder, LocalArrays) {
  const auto out = run_program([](hl::FunctionBuilder& f) {
    auto a = f.local_f64("a", 4);
    f.for_("i", 0, 4, [&](hl::Value i) { f.st(a, i, f.sitofp(i * i)); });
    auto sum = f.var_f64("sum", 0.0);
    f.for_("i", 0, 4, [&](hl::Value i) { sum.set(sum.get() + f.ld(a, i)); });
    f.emit(sum.get());
  });
  EXPECT_DOUBLE_EQ(out[0].as_f64(), 14.0);  // 0+1+4+9
}

TEST(HlBuilder, CallsAndArgs) {
  hl::ProgramBuilder pb("t");
  const auto f_add = pb.declare_function(
      "add", ir::Type::I64,
      {{ir::Type::I64, "a"}, {ir::Type::I64, "b"}});
  const auto f_main = pb.declare_function("main");
  {
    auto f = pb.define(f_add);
    f.ret(f.arg(0) + f.arg(1));
  }
  {
    auto f = pb.define(f_main);
    auto r = f.call(f_add, {f.c_i64(20), f.c_i64(22)});
    f.emit(r);
    f.ret();
  }
  auto mod = pb.finish();
  const auto run = vm::Vm::run(mod);
  ASSERT_TRUE(run.completed());
  EXPECT_EQ(run.outputs[0].as_i64(), 42);
}

TEST(HlBuilder, RecursiveCall) {
  hl::ProgramBuilder pb("t");
  const auto f_fib =
      pb.declare_function("fib", ir::Type::I64, {{ir::Type::I64, "n"}});
  const auto f_main = pb.declare_function("main");
  {
    auto f = pb.define(f_fib);
    auto result = f.var_i64("result", 0);
    f.if_else(
        f.arg(0).lt(2), [&] { result.set(f.arg(0)); },
        [&] {
          auto a = f.call(f_fib, {f.arg(0) - 1});
          auto b = f.call(f_fib, {f.arg(0) - 2});
          result.set(a + b);
        });
    f.ret(result.get());
  }
  {
    auto f = pb.define(f_main);
    f.emit(f.call(f_fib, {f.c_i64(12)}));
    f.ret();
  }
  auto mod = pb.finish();
  const auto run = vm::Vm::run(mod);
  ASSERT_TRUE(run.completed());
  EXPECT_EQ(run.outputs[0].as_i64(), 144);
}

TEST(HlBuilder, CastChain) {
  const auto out = run_program([](hl::FunctionBuilder& f) {
    auto x = f.c_f64(3.75);
    f.emit(f.fptosi(x));                      // 3
    f.emit(f.sitofp(f.c_i64(5)));             // 5.0
    f.emit(f.fpext_to_f64(f.fptrunc_to_f32(f.c_f64(1.5))));  // exact in f32
    auto i = f.trunc_to_i32(f.c_i64(-7));
    f.emit(f.sext_to_i64(i));                 // -7
    f.emit(f.zext_to_i64(f.trunc_to_i32(f.c_i64(0xFFFFFFFFll))));
  });
  EXPECT_EQ(out[0].as_i64(), 3);
  EXPECT_DOUBLE_EQ(out[1].as_f64(), 5.0);
  EXPECT_DOUBLE_EQ(out[2].as_f64(), 1.5);
  EXPECT_EQ(out[3].as_i64(), -7);
  EXPECT_EQ(out[4].as_i64(), 0xFFFFFFFFll);
}

TEST(HlBuilder, RegionsEmitMarkers) {
  hl::ProgramBuilder pb("t");
  const auto rid = pb.declare_region("loop", 1, 2);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.region(rid, [&] { f.emit(f.c_i64(1)); });
    f.ret();
  }
  auto mod = pb.finish();
  EXPECT_EQ(mod.num_regions(), 1u);
  EXPECT_EQ(mod.region(rid).name, "loop");
  EXPECT_TRUE(ir::is_valid(mod));
}

TEST(HlBuilder, FloatLiteralAgainstIntValueAdoptsType) {
  const auto out = run_program([](hl::FunctionBuilder& f) {
    auto x = f.var_f64("x", 2.0);
    f.emit(x.get() + 1);  // int literal against a float value
  });
  EXPECT_DOUBLE_EQ(out[0].as_f64(), 3.0);
}

TEST(HlBuilder, ModulePrinterProducesText) {
  hl::ProgramBuilder pb("printme");
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.emit(f.c_i64(1) + f.c_i64(2));
    f.ret();
  }
  auto mod = pb.finish();
  const auto text = ir::to_string(mod);
  EXPECT_NE(text.find("module @printme"), std::string::npos);
  EXPECT_NE(text.find("add"), std::string::npos);
  EXPECT_NE(text.find("emit"), std::string::npos);
}

}  // namespace
}  // namespace ft
