// Session-level and leftover-utility coverage: AnalysisSession caching
// semantics, string formatting, streaming trace sinks, observer gating.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/analysis.h"
#include "hl/builder.h"
#include "trace/file.h"
#include "trace/file_sink.h"
#include "util/strfmt.h"

namespace ft {
namespace {

// --- strfmt ---------------------------------------------------------------------

TEST(Strfmt, PrintfStyle) {
  EXPECT_EQ(util::strfmt("x=%d y=%s", 42, "ok"), "x=42 y=ok");
  EXPECT_EQ(util::strfmt("%.2f", 1.2345), "1.23");
  EXPECT_EQ(util::strfmt("empty"), "empty");
}

TEST(Format, BraceStyle) {
  EXPECT_EQ(util::format("a {} b {}", 1, "two"), "a 1 b two");
  EXPECT_EQ(util::format("{}", 3.5), "3.5");
  EXPECT_EQ(util::format("{:.6g}", 1.25), "1.25");  // spec accepted, %g used
  EXPECT_EQ(util::format("{{literal}}"), "{literal}");
  EXPECT_EQ(util::format("trailing {}", std::string("s")), "trailing s");
  EXPECT_EQ(util::format("{} {} {}", 1, 2), "1 2 ");  // missing arg = empty
  EXPECT_EQ(util::format("no placeholders", 9), "no placeholders");
}

// --- streaming file sink ------------------------------------------------------------

TEST(FileSink, WritesReadableTraceFiles) {
  hl::ProgramBuilder pb("t");
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto s = f.var_f64("s", 0.0);
    f.for_("i", 0, 200, [&](hl::Value i) { s.set(s.get() + f.sitofp(i)); });
    f.emit(s.get());
    f.ret();
  }
  auto mod = pb.finish();

  const auto path =
      (std::filesystem::temp_directory_path() / "ft_sink_test.fttrace")
          .string();
  std::uint64_t written = 0;
  {
    trace::StreamingFileTracer sink(path, /*buffer_records=*/64);
    ASSERT_TRUE(sink.ok());
    vm::VmOptions opts;
    opts.observer = &sink;
    const auto r = vm::Vm::run(mod, opts);
    sink.close();
    written = sink.records_written();
    EXPECT_EQ(written, r.instructions);
  }
  trace::Trace loaded;
  ASSERT_TRUE(trace::read_trace_file(path, loaded));
  EXPECT_EQ(loaded.size(), written);
  // Record stream is the same as an in-memory collection.
  trace::TraceCollector c;
  vm::VmOptions opts;
  opts.observer = &c;
  (void)vm::Vm::run(mod, opts);
  ASSERT_EQ(c.trace().size(), loaded.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.records[i].result_bits, c.trace().records[i].result_bits);
  }
  std::filesystem::remove(path);
}

TEST(FileSink, BadPathReportsNotOk) {
  trace::StreamingFileTracer sink("/nonexistent-dir/nope.fttrace");
  EXPECT_FALSE(sink.ok());
  vm::DynInstr d;
  sink.on_instruction(d);  // must not crash
  EXPECT_EQ(sink.records_written(), 0u);
}

// --- observer gating (trace control) --------------------------------------------------

class GatedCounter final : public vm::ExecObserver {
 public:
  void on_instruction(const vm::DynInstr& d) override {
    seen++;
    if (d.op == ir::Opcode::RegionEnter) gate = true;
    if (d.op == ir::Opcode::RegionExit) gate = false;
  }
  [[nodiscard]] bool enabled() const override { return gate; }
  std::size_t seen = 0;
  bool gate = false;
};

TEST(ObserverGating, OnlyWindowAndMarkersDelivered) {
  hl::ProgramBuilder pb("t");
  const auto rid = pb.declare_region("r", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto s = f.var_i64("s", 0);
    f.for_("i", 0, 50, [&](hl::Value i) { s.set(s.get() + i); });  // outside
    f.region(rid, [&] {
      f.for_("i", 0, 10, [&](hl::Value i) { s.set(s.get() + i); });
    });
    f.for_("i", 0, 50, [&](hl::Value i) { s.set(s.get() + i); });  // outside
    f.emit(s.get());
    f.ret();
  }
  auto mod = pb.finish();

  GatedCounter gated;
  vm::VmOptions gopts;
  gopts.observer = &gated;
  const auto rg = vm::Vm::run(mod, gopts);

  trace::TraceCollector all;
  vm::VmOptions aopts;
  aopts.observer = &all;
  (void)vm::Vm::run(mod, aopts);

  // The gated observer sees the region body + the two markers, far fewer
  // than the full stream, and execution results are unaffected.
  EXPECT_LT(gated.seen, all.trace().size() / 2);
  EXPECT_GT(gated.seen, 10u);
  EXPECT_TRUE(rg.completed());
}

// --- session caching ---------------------------------------------------------------------

TEST(SessionCaching, TraceRebuildAfterInvalidate) {
  core::AnalysisSession session(apps::build_sp());
  const auto n1 = session.golden_trace()->size();
  const auto e1 = session.golden_events()->num_locations();
  session.invalidate_trace();
  const auto n2 = session.golden_trace()->size();
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(e1, session.golden_events()->num_locations());
}

TEST(SessionCaching, MissingRegionInstanceHandledGracefully) {
  core::AnalysisSession session(apps::build_sp());
  EXPECT_FALSE(session.region_io(0, 9999).has_value());
  const auto g = session.region_dddg(0, 9999);
  EXPECT_EQ(g->num_nodes(), 0u);
}

TEST(SessionCaching, DiffWithRecordCap) {
  core::AnalysisSession session(apps::build_sp());
  const auto diff =
      session.diff_with(vm::FaultPlan::result_bit(1000, 5), /*max=*/500);
  EXPECT_TRUE(diff.truncated);
  EXPECT_EQ(diff.usable_records(), 500u);
  // Outcome classification still covers the full run.
  EXPECT_TRUE(diff.clean_result.completed());
}

class SessionOverApps : public ::testing::TestWithParam<std::string> {};

TEST_P(SessionOverApps, AllAnalysisRegionsClassifiable) {
  core::AnalysisSession session(apps::build_app(GetParam()));
  for (const auto& rd : session.app().analysis_regions) {
    const auto io = session.region_io(rd.id, 0);
    ASSERT_TRUE(io.has_value()) << rd.name;
    // Every region must write something the program later consumes, except
    // pure sinks; at minimum the classification must be self-consistent.
    for (const auto& in : io->inputs) {
      EXPECT_FALSE(io->is_output(in.loc) && io->is_input(in.loc) &&
                   in.loc == vm::kNoLoc);
    }
    for (const auto l : io->internals) {
      EXPECT_FALSE(io->is_input(l)) << rd.name;
      EXPECT_FALSE(io->is_output(l)) << rd.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Paper, SessionOverApps,
                         ::testing::Values("CG", "MG", "IS", "LU", "SP"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace ft
