// Campaign-guided hardening (src/harden): pass structure, clean-run
// transparency, detector coverage, checkpoint/rollback recovery outcomes and
// their determinism across pool sizes and fork policies, and the end-to-end
// run_hardening wiring.
#include <gtest/gtest.h>

#include <vector>

#include "core/analysis.h"
#include "fault/campaign.h"
#include "fault/outcome.h"
#include "fault/sites.h"
#include "harden/harden.h"
#include "hl/builder.h"
#include "ir/verify.h"
#include "util/thread_pool.h"
#include "vm/decode.h"
#include "vm/interp.h"

namespace ft {
namespace {

// Dot-product-style reduction: the accumulator Var is an Alloca cell with
// the load-add-store idiom, so ABFT qualifies it; the loop body is full of
// pure candidates for DWC.
struct HardenHarness {
  ir::Module mod{"h"};
  std::uint32_t rid = 0;
  std::vector<vm::OutputValue> golden;
  fault::Verifier verifier;
  apps::AppSpec spec;

  static HardenHarness make() {
    HardenHarness h;
    hl::ProgramBuilder pb("h");
    auto xs = pb.global_init_f64("xs", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0,
                                        8.0, 9.0, 10.0, 11.0, 12.0});
    auto ys = pb.global_init_f64("ys", {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0,
                                        16.0, 18.0, 20.0, 22.0, 24.0});
    const auto rid = pb.declare_region("dot", 0, 0);
    const auto fid = pb.declare_function("main");
    {
      auto f = pb.define(fid);
      auto s = f.var_f64("s", 0.0);
      f.region(rid, [&] {
        f.for_("i", 0, 12, [&](hl::Value i) {
          s.set(s.get() + f.ld(xs, i) * f.ld(ys, i));
        });
      });
      f.emit(s.get());
      f.ret();
    }
    h.rid = rid;
    h.mod = pb.finish();
    const auto run = vm::Vm::run(h.mod);
    EXPECT_TRUE(run.completed());
    h.golden = run.outputs;
    h.verifier = fault::tolerance_verifier(1e-3);
    h.spec.name = "dotprod";
    h.spec.module = h.mod;
    h.spec.analysis_regions = {{rid, "dot", 0, 0}};
    h.spec.verifier = h.verifier;
    return h;
  }
};

TEST(HardenPass, UnguidedProtectsEveryRegionAndVerifies) {
  const auto h = HardenHarness::make();
  const auto hr = harden::harden_module(h.mod, harden::HardenConfig{});
  EXPECT_TRUE(hr.verify_errors.empty())
      << (hr.verify_errors.empty() ? "" : hr.verify_errors.front());
  ASSERT_EQ(hr.regions.size(), 1u);
  EXPECT_EQ(hr.regions[0].region_id, h.rid);
  EXPECT_EQ(hr.regions[0].name, "dot");
  EXPECT_GT(hr.regions[0].dwc_sites, 0u);
  // The accumulator slot plus the loop counter: both Allocas sit in the
  // entry block (the dominance rule ABFT qualification requires) and both
  // follow the load-add-store accumulate idiom.
  EXPECT_EQ(hr.regions[0].abft_cells, 2u);
  EXPECT_GT(hr.regions[0].added_instructions, 0u);
  EXPECT_GT(hr.regions[0].original_instructions, 0u);
  EXPECT_GT(hr.regions[0].overhead(), 1.0);
  EXPECT_EQ(hr.comm_sites, 0u);
  EXPECT_EQ(hr.added_instructions, hr.regions[0].added_instructions);
}

TEST(HardenPass, GuidedSkipsResilientRegions) {
  const auto h = HardenHarness::make();
  harden::HardenConfig cfg;
  cfg.sr_threshold = 0.5;
  // Region measured at 0.9 success: above threshold, nothing to protect.
  const auto hr = harden::harden_module(
      h.mod, cfg, {harden::RegionGuide{h.rid, 0.9, false}});
  EXPECT_TRUE(hr.verify_errors.empty());
  EXPECT_TRUE(hr.regions.empty());
  EXPECT_EQ(hr.added_instructions, 0u);
  // Below threshold: protected.
  const auto hr2 = harden::harden_module(
      h.mod, cfg, {harden::RegionGuide{h.rid, 0.2, false}});
  ASSERT_EQ(hr2.regions.size(), 1u);
  EXPECT_GT(hr2.added_instructions, 0u);
}

TEST(HardenPass, CleanRunIsBitIdenticalOnBothInterpreters) {
  const auto h = HardenHarness::make();
  const auto hr = harden::harden_module(h.mod, harden::HardenConfig{});
  ASSERT_TRUE(hr.verify_errors.empty());

  const auto legacy = vm::Vm::run(hr.module);
  ASSERT_TRUE(legacy.completed());
  EXPECT_EQ(legacy.outputs, h.golden);  // bitwise: OutputValue op==

  const auto prog = vm::DecodedProgram::decode(hr.module);
  const auto decoded = vm::Vm::run(prog, {});
  ASSERT_TRUE(decoded.completed());
  EXPECT_EQ(decoded.outputs, h.golden);
  // The detectors cost instructions on the clean path too; the hardened run
  // retires strictly more than the original.
  const auto base = vm::Vm::run(h.mod);
  EXPECT_GT(decoded.instructions, base.instructions);
}

TEST(HardenPass, CommBoundaryProtection) {
  hl::ProgramBuilder pb("comm");
  const auto rid = pb.declare_region("reduce", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto s = f.var_f64("s", 0.0);
    f.region(rid, [&] {
      f.for_("i", 0, 4, [&](hl::Value i) {
        s.set(s.get() + f.c_f64(1.5) * f.sitofp(i));
      });
    });
    auto total = f.mpi_allreduce(s.get(), ir::ReduceOp::Sum);
    f.emit(total);
    f.ret();
  }
  auto mod = pb.finish();
  const auto golden = vm::Vm::run(mod);
  ASSERT_TRUE(golden.completed());

  harden::HardenConfig cfg;
  cfg.protect_comm = true;
  const auto hr = harden::harden_module(mod, cfg);
  ASSERT_TRUE(hr.verify_errors.empty())
      << (hr.verify_errors.empty() ? "" : hr.verify_errors.front());
  EXPECT_GT(hr.comm_sites, 0u);
  // Escaping guide turns comm protection on without the config flag.
  harden::HardenConfig plain;
  const auto guided = harden::harden_module(
      mod, plain, {harden::RegionGuide{rid, 0.0, /*escaping=*/true}});
  EXPECT_GT(guided.comm_sites, 0u);
  const auto unguided = harden::harden_module(mod, plain);
  EXPECT_EQ(unguided.comm_sites, 0u);

  const auto clean = vm::Vm::run(hr.module);
  ASSERT_TRUE(clean.completed());
  EXPECT_EQ(clean.outputs, golden.outputs);
}

// A campaign against the hardened module must see detectors fire; with
// recovery on, detected trials split into recovered/unrecoverable and the
// effective success rate cannot be below the plain success rate.
TEST(HardenCampaign, DetectorsFireAndRecoveryRecovers) {
  const auto h = HardenHarness::make();
  const auto hr = harden::harden_module(h.mod, harden::HardenConfig{});
  ASSERT_TRUE(hr.verify_errors.empty());
  const auto prog = vm::DecodedProgram::decode(hr.module);
  const auto golden = vm::Vm::run(prog, {});
  ASSERT_TRUE(golden.completed());
  const auto sites = fault::enumerate_sites(hr.module, h.rid, 0, {});
  ASSERT_TRUE(sites.region_found);

  util::ThreadPool pool(2);
  fault::CampaignConfig cfg;
  cfg.trials = 192;
  cfg.seed = 0xD07ull;
  cfg.recovery.enabled = false;
  const auto undetected = fault::run_prepared_campaign(
      prog,
      fault::prepare_campaign(sites, fault::TargetClass::Internal, {}, cfg),
      golden.outputs, h.verifier, pool);
  // Recovery off: every detection is terminal.
  EXPECT_GT(undetected.detected_unrecoverable, 0u);
  EXPECT_EQ(undetected.detected_recovered, 0u);
  EXPECT_GT(undetected.detection_rate(), 0.0);

  cfg.recovery.enabled = true;
  cfg.recovery.checkpoint_interval = 4096;  // checkpoint 0 always clean here
  const auto recovered = fault::run_prepared_campaign(
      prog,
      fault::prepare_campaign(sites, fault::TargetClass::Internal, {}, cfg),
      golden.outputs, h.verifier, pool);
  EXPECT_EQ(recovered.trials, undetected.trials);
  // Same plans, same detections — recovery only reclassifies them.
  EXPECT_EQ(recovered.detected_recovered + recovered.detected_unrecoverable,
            undetected.detected_unrecoverable);
  EXPECT_GT(recovered.detected_recovered, 0u);
  EXPECT_GE(recovered.effective_success_rate(), recovered.success_rate());
  EXPECT_EQ(recovered.trials, recovered.success + recovered.failed +
                                  recovered.crashed +
                                  recovered.detected_recovered +
                                  recovered.detected_unrecoverable);
}

// ABFT blind-spot coverage: region-entry input-memory faults corrupt cells
// both DWC copies would read, but the shadow accumulator catches flips of
// the protected cell itself. Probe every input word at a high exponent bit
// (a mantissa flip of the 0.0 accumulator is a denormal that rounding
// absorbs — bit-invisible to any detector AND to the output).
TEST(HardenCampaign, InputMemoryFaultsAreDetected) {
  const auto h = HardenHarness::make();
  const auto hr = harden::harden_module(h.mod, harden::HardenConfig{});
  ASSERT_TRUE(hr.verify_errors.empty());
  const auto prog = vm::DecodedProgram::decode(hr.module);
  const auto sites = fault::enumerate_sites(hr.module, h.rid, 0, {});
  ASSERT_TRUE(sites.region_found);

  std::size_t detected = 0, undetected_wrong = 0;
  for (const auto& site : sites.sites.input) {
    vm::VmOptions opts;
    opts.fault = fault::plan_for_input(sites.sites, site, 62);
    const auto run = vm::Vm::run(prog, opts);
    if (run.trap == vm::TrapKind::DetectedFault) {
      ++detected;
    } else if (run.completed() && run.outputs != h.golden) {
      ++undetected_wrong;
    }
  }
  // The accumulator cell and its shadow are caught; the xs/ys array cells
  // corrupt the increment identically on both sides — the documented ABFT
  // blind spot — and land as plain verification failures.
  EXPECT_GE(detected, 2u);
  EXPECT_GT(undetected_wrong, 0u);
}

// The modeled checkpoint cadence decides recoverability from the detection
// and landing indices alone, so outcome counts are invariant across pool
// sizes and the fork policy.
TEST(HardenCampaign, RecoveryCountsDeterministicAcrossPoolsAndFork) {
  const auto h = HardenHarness::make();
  const auto hr = harden::harden_module(h.mod, harden::HardenConfig{});
  ASSERT_TRUE(hr.verify_errors.empty());
  const auto prog = vm::DecodedProgram::decode(hr.module);
  const auto golden = vm::Vm::run(prog, {});
  const auto sites = fault::enumerate_sites(hr.module, h.rid, 0, {});
  ASSERT_TRUE(sites.region_found);

  fault::CampaignConfig cfg;
  cfg.trials = 128;
  cfg.seed = 0x5EEDull;
  cfg.recovery.enabled = true;
  cfg.recovery.checkpoint_interval = 64;  // tight cadence: both classes occur
  cfg.fork.min_gap = 16;

  std::vector<fault::CampaignResult> results;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    for (const bool fork : {false, true}) {
      auto c = cfg;
      c.fork.enabled = fork;
      util::ThreadPool pool(workers);
      results.push_back(fault::run_prepared_campaign(
          prog,
          fault::prepare_campaign(sites, fault::TargetClass::Internal, {}, c),
          golden.outputs, h.verifier, pool));
    }
  }
  const auto& ref = results.front();
  EXPECT_GT(ref.detected_recovered, 0u);
  for (const auto& r : results) {
    EXPECT_EQ(r.trials, ref.trials);
    EXPECT_EQ(r.success, ref.success);
    EXPECT_EQ(r.failed, ref.failed);
    EXPECT_EQ(r.crashed, ref.crashed);
    EXPECT_EQ(r.detected_recovered, ref.detected_recovered);
    EXPECT_EQ(r.detected_unrecoverable, ref.detected_unrecoverable);
  }
}

// What DetectedRecovered promises: the rollback re-execution replays the
// fault-free run, so its outputs are bit-identical to golden. Pin the claim
// directly on a trial whose detector fires.
TEST(HardenCampaign, RecoveredTrialReplaysGoldenBitForBit) {
  const auto h = HardenHarness::make();
  const auto hr = harden::harden_module(h.mod, harden::HardenConfig{});
  ASSERT_TRUE(hr.verify_errors.empty());
  const auto prog = vm::DecodedProgram::decode(hr.module);
  const auto golden = vm::Vm::run(prog, {});
  const auto sites = fault::enumerate_sites(hr.module, h.rid, 0, {});
  fault::CampaignConfig cfg;
  cfg.trials = 192;
  cfg.seed = 0xD07ull;
  const auto prepared =
      fault::prepare_campaign(sites, fault::TargetClass::Internal, {}, cfg);

  std::size_t detected = 0;
  for (const auto& plan : prepared.plans) {
    vm::VmOptions opts = prepared.run_opts;
    opts.fault = plan;
    const auto faulty = vm::Vm::run(prog, opts);
    if (faulty.trap != vm::TrapKind::DetectedFault) continue;
    ++detected;
    // The recovery path re-executes with the fault disarmed (the plan
    // already fired; rollback restores pre-fault state).
    vm::VmOptions clean = prepared.run_opts;
    clean.fault = vm::FaultPlan::none();
    const auto rerun = vm::Vm::run(prog, clean);
    ASSERT_TRUE(rerun.completed());
    ASSERT_EQ(rerun.outputs.size(), golden.outputs.size());
    for (std::size_t i = 0; i < rerun.outputs.size(); ++i) {
      EXPECT_EQ(rerun.outputs[i].bits, golden.outputs[i].bits);
    }
    if (detected >= 4) break;  // a handful is plenty
  }
  EXPECT_GT(detected, 0u);
}

// End-to-end wiring: baseline campaign -> pass -> re-campaign, joined.
TEST(RunHardening, CampaignTransformRecampaign) {
  const auto h = HardenHarness::make();
  fault::CampaignConfig cfg;
  cfg.trials = 96;
  cfg.seed = 0xCAFEull;

  const auto request = core::AnalysisRequest()
                           .app(h.spec)
                           .analysis_regions()
                           .target(fault::TargetClass::Internal)
                           .success_rates(cfg);
  harden::HardenConfig hcfg;
  const auto report = core::run_hardening(request, hcfg);

  ASSERT_EQ(report.apps.size(), 1u);
  const auto& app = report.apps[0];
  EXPECT_EQ(app.app, "dotprod");
  EXPECT_EQ(app.spec.name, "dotprod");
  ASSERT_EQ(app.regions.size(), 1u);
  const auto& row = app.regions[0];
  EXPECT_EQ(row.region_name, "dot");
  EXPECT_GT(row.dwc_sites, 0u);
  EXPECT_EQ(row.abft_cells, 2u);
  EXPECT_GT(row.overhead(), 1.0);
  // Detectors fired in the re-campaign and recovery reclassified some of
  // them; the effective rate must not fall below the guiding baseline
  // measurement minus sampling noise — assert the structural facts only.
  EXPECT_GT(row.detection_rate, 0.0);
  EXPECT_GT(row.hardened_success_rate, 0.0);
  EXPECT_GT(row.baseline_success_rate, 0.0);

  // Both legs really ran as full analyses.
  EXPECT_EQ(report.baseline.entries.size(), 1u);
  EXPECT_EQ(report.hardened.entries.size(), 1u);
  const auto* he = report.hardened.find("dotprod", "dot",
                                        fault::TargetClass::Internal);
  ASSERT_NE(he, nullptr);
  EXPECT_GT(he->campaign.detected_recovered +
                he->campaign.detected_unrecoverable,
            0u);

  // Convenience method spells the same pipeline.
  const auto report2 = request.harden(hcfg);
  ASSERT_EQ(report2.apps.size(), 1u);
  EXPECT_EQ(report2.apps[0].regions[0].detection_rate, row.detection_rate);
}

TEST(RunHardening, RejectsRequestsWithoutBaselineCampaign) {
  const auto h = HardenHarness::make();
  const auto request =
      core::AnalysisRequest().app(h.spec).analysis_regions();
  EXPECT_THROW((void)core::run_hardening(request, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ft
