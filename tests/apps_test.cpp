// Workload health: every app must build valid MiniIR, run fault-free to a
// passing verification, be deterministic, and expose the paper's region
// structure.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "ir/verify.h"
#include "trace/collector.h"
#include "trace/segment.h"
#include "vm/interp.h"

namespace ft {
namespace {

class AllApps : public ::testing::TestWithParam<std::string> {};

TEST_P(AllApps, BuildsValidModule) {
  auto app = apps::build_app(GetParam());
  const auto errs = ir::verify(app.module);
  EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs[0]);
  EXPECT_FALSE(app.analysis_regions.empty());
  EXPECT_GT(app.main_iters, 0);
}

TEST_P(AllApps, FaultFreeRunPassesOwnVerification) {
  auto app = apps::build_app(GetParam());
  const auto r = vm::Vm::run(app.module, app.base);
  ASSERT_TRUE(r.completed()) << trap_name(r.trap);
  ASSERT_GE(r.outputs.size(), 2u);
  // Program-internal verification flag (output 0) must pass.
  EXPECT_EQ(r.outputs[0].type, ir::Type::I64);
  EXPECT_EQ(r.outputs[0].bits, 1u) << "internal verification failed";
  // The host verifier must accept the golden run against itself.
  EXPECT_TRUE(app.verifier(r.outputs, r.outputs));
}

TEST_P(AllApps, Deterministic) {
  auto app = apps::build_app(GetParam());
  const auto a = vm::Vm::run(app.module, app.base);
  const auto b = vm::Vm::run(app.module, app.base);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.instructions, b.instructions);
}

TEST_P(AllApps, MainLoopRegionHasExpectedInstances) {
  auto app = apps::build_app(GetParam());
  trace::TraceCollector c;
  auto opts = app.base;
  opts.observer = &c;
  const auto r = vm::Vm::run(app.module, opts);
  ASSERT_TRUE(r.completed());
  const auto instances = trace::segment_regions(c.trace().span());
  const auto main_insts = trace::instances_of(instances, app.main_region);
  EXPECT_EQ(main_insts.size(), static_cast<std::size_t>(app.main_iters));
  for (const auto& inst : main_insts) {
    EXPECT_TRUE(inst.complete);
    EXPECT_GT(inst.body_length(), 0u);
  }
}

TEST_P(AllApps, AnalysisRegionsAllHaveInstances) {
  auto app = apps::build_app(GetParam());
  trace::TraceCollector c;
  auto opts = app.base;
  opts.observer = &c;
  (void)vm::Vm::run(app.module, opts);
  const auto instances = trace::segment_regions(c.trace().span());
  for (const auto& rd : app.analysis_regions) {
    const auto insts = trace::instances_of(instances, rd.id);
    EXPECT_FALSE(insts.empty()) << "region " << rd.name << " never entered";
  }
}

TEST_P(AllApps, RunSizeIsAnalysisFriendly) {
  auto app = apps::build_app(GetParam());
  const auto r = vm::Vm::run(app.module, app.base);
  ASSERT_TRUE(r.completed());
  EXPECT_GT(r.instructions, 10000u) << "workload too trivial";
  EXPECT_LT(r.instructions, 5000000u) << "workload too large for campaigns";
}

INSTANTIATE_TEST_SUITE_P(Paper, AllApps,
                         ::testing::ValuesIn(apps::all_app_names()),
                         [](const auto& info) { return info.param; });

// --- hardened CG variants (Use Case 1) ---------------------------------------

TEST(CgVariants, HardenedVariantsPassVerification) {
  for (const auto h :
       {apps::CgHardening{true, false}, apps::CgHardening{false, true},
        apps::CgHardening{true, true}}) {
    auto app = apps::build_cg_hardened(h);
    const auto r = vm::Vm::run(app.module, app.base);
    ASSERT_TRUE(r.completed()) << trap_name(r.trap);
    EXPECT_EQ(r.outputs[0].bits, 1u)
        << "dcl=" << h.dcl_overwrite << " trunc=" << h.truncation;
  }
}

TEST(CgVariants, HardenedZetaIsCloseToBaseline) {
  auto base = apps::build_cg();
  auto hard = apps::build_cg_hardened({true, true});
  const auto rb = vm::Vm::run(base.module, base.base);
  const auto rh = vm::Vm::run(hard.module, hard.base);
  ASSERT_TRUE(rb.completed());
  ASSERT_TRUE(rh.completed());
  const double zb = rb.outputs.back().as_f64();
  const double zh = rh.outputs.back().as_f64();
  // The truncation window costs a little precision but must stay close.
  EXPECT_NEAR(zb, zh, std::abs(zb) * 0.05);
}

TEST(CgVariants, HardenedRuntimeOverheadIsSmall) {
  auto base = apps::build_cg();
  auto hard = apps::build_cg_hardened({true, false});
  const auto rb = vm::Vm::run(base.module, base.base);
  const auto rh = vm::Vm::run(hard.module, hard.base);
  // Table III: < 0.1% wall-clock cost; in instruction counts the copy-in/
  // copy-back is bounded by a few percent at this scale.
  EXPECT_LT(static_cast<double>(rh.instructions),
            static_cast<double>(rb.instructions) * 1.10);
}

TEST(Registry, KnowsAllTenApps) {
  EXPECT_EQ(apps::all_app_names().size(), 10u);
  EXPECT_THROW(apps::build_app("NOPE"), std::runtime_error);
}

}  // namespace
}  // namespace ft
