// Regression model (Use Case 2): linear algebra, planted-model recovery,
// R², standardized coefficients, leave-one-out validation.
#include <gtest/gtest.h>

#include <cmath>

#include "model/linalg.h"
#include "model/regression.h"
#include "util/rng.h"

namespace ft::model {
namespace {

TEST(Linalg, MatrixProductAndTranspose) {
  Matrix a(2, 3);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(0, 2) = 3;
  a.at(1, 0) = 4; a.at(1, 1) = 5; a.at(1, 2) = 6;
  const auto at = a.transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.at(2, 1), 6);
  const auto g = at * a;  // 3x3 gram
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 17.0);
  EXPECT_DOUBLE_EQ(g.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(g.at(2, 2), 45.0);
}

TEST(Linalg, MatVec) {
  Matrix a(2, 2);
  a.at(0, 0) = 2; a.at(0, 1) = 1;
  a.at(1, 0) = 0; a.at(1, 1) = 3;
  const std::vector<double> v = {1.0, 2.0};
  const auto r = a.mul(v);
  EXPECT_DOUBLE_EQ(r[0], 4.0);
  EXPECT_DOUBLE_EQ(r[1], 6.0);
}

TEST(Linalg, CholeskySolvesSpdSystem) {
  Matrix a(3, 3);
  // SPD matrix: diag-dominant symmetric.
  const double vals[3][3] = {{4, 1, 0}, {1, 5, 2}, {0, 2, 6}};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) a.at(i, j) = vals[i][j];
  }
  const std::vector<double> x_true = {1.0, -2.0, 0.5};
  const auto b = a.mul(x_true);
  const auto x = cholesky_solve(a, b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-12);
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  Matrix a = Matrix::identity(2);
  a.at(1, 1) = -1.0;
  EXPECT_THROW(cholesky_solve(a, std::vector<double>{1.0, 1.0}),
               std::runtime_error);
}

TEST(Regression, RecoversPlantedCoefficients) {
  util::Rng rng(7);
  const std::size_t n = 40, p = 3;
  const std::vector<double> beta_true = {0.5, -1.25, 2.0};
  const double intercept_true = 0.3;
  Matrix x(n, p);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = intercept_true;
    for (std::size_t j = 0; j < p; ++j) {
      x.at(i, j) = rng.uniform();
      s += beta_true[j] * x.at(i, j);
    }
    y[i] = s;
  }
  BayesianLinearRegression reg;
  RegressionOptions opts;
  opts.prior_precision = 1e-8;
  reg.fit(x, y, opts);
  for (std::size_t j = 0; j < p; ++j) {
    EXPECT_NEAR(reg.coefficients()[j], beta_true[j], 1e-5);
  }
  EXPECT_NEAR(reg.intercept(), intercept_true, 1e-5);
  EXPECT_NEAR(reg.r_squared(x, y), 1.0, 1e-9);
}

TEST(Regression, NoiseLowersRSquaredButFitsSign) {
  util::Rng rng(11);
  const std::size_t n = 60;
  Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = rng.uniform();
    y[i] = 2.0 * x.at(i, 0) + 0.2 * (rng.uniform() - 0.5);
  }
  BayesianLinearRegression reg;
  reg.fit(x, y);
  EXPECT_GT(reg.coefficients()[0], 1.5);
  const double r2 = reg.r_squared(x, y);
  EXPECT_GT(r2, 0.8);
  EXPECT_LT(r2, 1.0);
}

TEST(Regression, PriorShrinksCoefficients) {
  Matrix x(4, 1);
  std::vector<double> y(4);
  for (int i = 0; i < 4; ++i) {
    x.at(i, 0) = i;
    y[i] = 3.0 * i;
  }
  BayesianLinearRegression loose, tight;
  RegressionOptions lo, hi;
  lo.prior_precision = 1e-9;
  hi.prior_precision = 100.0;
  loose.fit(x, y, lo);
  tight.fit(x, y, hi);
  EXPECT_NEAR(loose.coefficients()[0], 3.0, 1e-6);
  EXPECT_LT(tight.coefficients()[0], loose.coefficients()[0]);
}

TEST(Regression, StandardizedCoefficientsRankImportance) {
  util::Rng rng(3);
  const std::size_t n = 50;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = rng.uniform();          // strong predictor
    x.at(i, 1) = rng.uniform() * 0.01;   // weak (tiny variance)
    y[i] = 1.0 * x.at(i, 0) + 1.0 * x.at(i, 1);
  }
  BayesianLinearRegression reg;
  reg.fit(x, y);
  const auto std_coef = reg.standardized_coefficients(x, y);
  // Equal raw betas, but the high-variance feature dominates standardized.
  EXPECT_GT(std::fabs(std_coef[0]), std::fabs(std_coef[1]) * 10);
}

TEST(Regression, LeaveOneOutPredictsHeldOutRows) {
  util::Rng rng(5);
  const std::size_t n = 12, p = 2;
  Matrix x(n, p);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = rng.uniform();
    x.at(i, 1) = rng.uniform();
    y[i] = 0.2 + 0.5 * x.at(i, 0) + 0.3 * x.at(i, 1);
  }
  const auto loo = leave_one_out(x, y);
  ASSERT_EQ(loo.predicted.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(loo.predicted[i], y[i], 1e-3);
    EXPECT_LT(loo.error_rate[i], 0.02);
    EXPECT_GE(loo.predicted[i], 0.0);
    EXPECT_LE(loo.predicted[i], 1.0);  // clamped like a success rate
  }
  EXPECT_LT(loo.mean_error_rate, 0.02);
}

TEST(Regression, LooClampsPredictionsToUnitInterval) {
  // Extrapolation that would exceed 1 gets clamped (predicted SRs).
  Matrix x(5, 1);
  std::vector<double> y(5);
  for (int i = 0; i < 5; ++i) {
    x.at(i, 0) = i;
    y[i] = 0.3 * i;  // row 4 has y = 1.2 -> clamp at predict time
  }
  const auto loo = leave_one_out(x, y);
  for (const auto p : loo.predicted) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace ft::model
