// Region model: input/output/internal classification (§III-B) and the
// Case 1 / Case 2 tolerance classifier (§III-D).
#include <gtest/gtest.h>

#include "acl/diff.h"
#include "hl/builder.h"
#include "regions/io.h"
#include "regions/tolerance.h"
#include "trace/collector.h"
#include "trace/events.h"
#include "util/bits.h"
#include "vm/interp.h"

namespace ft {
namespace {

// A region that reads `in[]`, uses a temp, and writes `out[]` (read after).
struct Harness {
  ir::Module mod{"t"};
  std::uint32_t rid = 0;
  std::uint64_t in_addr = 0, out_addr = 0, tmp_addr = 0;

  static Harness make() {
    Harness h;
    hl::ProgramBuilder pb("t");
    auto in = pb.global_init_f64("in", {2.0, 3.0});
    auto tmp = pb.global_f64("tmp", 1);
    auto out = pb.global_f64("out", 1);
    const auto rid = pb.declare_region("r", 0, 0);
    const auto fid = pb.declare_function("main");
    {
      auto f = pb.define(fid);
      f.region(rid, [&] {
        auto t = f.ld(in, 0) * f.ld(in, 1);
        f.st(tmp, 0, t);
        f.st(out, 0, f.ld(tmp, 0) + 1.0);
      });
      f.emit(f.ld(out, 0));  // out is read after the region
      f.ret();
    }
    h.rid = rid;
    h.mod = pb.finish();
    h.in_addr = h.mod.global(*h.mod.find_global("in")).addr;
    h.out_addr = h.mod.global(*h.mod.find_global("out")).addr;
    h.tmp_addr = h.mod.global(*h.mod.find_global("tmp")).addr;
    return h;
  }
};

struct Classified {
  regions::RegionIo io;
  trace::RegionInstance inst;
};

Classified classify(const Harness& h) {
  trace::TraceCollector c;
  vm::VmOptions opts;
  opts.observer = &c;
  const auto r = vm::Vm::run(h.mod, opts);
  EXPECT_TRUE(r.completed());
  const auto insts = trace::segment_regions(c.trace().span());
  const auto inst = trace::find_instance(insts, h.rid, 0).value();
  const auto events = trace::LocationEvents::build(c.trace().span());
  const auto slice = c.trace().slice(inst.body_begin(), inst.body_end());
  return {regions::classify_io(slice, events, inst), inst};
}

TEST(RegionIo, InputsAreTheUpstreamValues) {
  const auto h = Harness::make();
  const auto [io, inst] = classify(h);
  EXPECT_TRUE(io.is_input(vm::mem_loc(h.in_addr)));
  EXPECT_TRUE(io.is_input(vm::mem_loc(h.in_addr + 8)));
  EXPECT_FALSE(io.is_input(vm::mem_loc(h.out_addr)));
  EXPECT_FALSE(io.is_input(vm::mem_loc(h.tmp_addr)));
}

TEST(RegionIo, OutputsAreLiveOutWrites) {
  const auto h = Harness::make();
  const auto [io, inst] = classify(h);
  EXPECT_TRUE(io.is_output(vm::mem_loc(h.out_addr)));
  // tmp is written and read only inside -> internal, not output.
  EXPECT_FALSE(io.is_output(vm::mem_loc(h.tmp_addr)));
  bool tmp_internal = false;
  for (const auto l : io.internals) {
    if (l == vm::mem_loc(h.tmp_addr)) tmp_internal = true;
  }
  EXPECT_TRUE(tmp_internal);
}

TEST(RegionIo, MemoryInputsFilterRegisters) {
  const auto h = Harness::make();
  const auto [io, inst] = classify(h);
  for (const auto& v : regions::memory_inputs(io)) {
    EXPECT_TRUE(vm::is_mem_loc(v.loc));
  }
  EXPECT_GE(regions::memory_inputs(io).size(), 2u);
}

TEST(RegionIo, InputValuesCaptured) {
  const auto h = Harness::make();
  const auto [io, inst] = classify(h);
  bool found = false;
  for (const auto& v : io.inputs) {
    if (v.loc == vm::mem_loc(h.in_addr)) {
      EXPECT_EQ(v.bits, util::f64_to_bits(2.0));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- tolerance classification ----------------------------------------------------

struct TolCase {
  vm::FaultPlan plan;
  regions::ToleranceCase expected;
};

regions::ToleranceReport tolerance_for(const Harness& h,
                                       const vm::FaultPlan& plan) {
  acl::DiffOptions dopts;
  dopts.fault = plan;
  const auto diff = acl::diff_run(h.mod, dopts);
  const auto span = std::span<const vm::DynInstr>(
      diff.faulty.records.data(), diff.usable_records());
  const auto insts = trace::segment_regions(span);
  const auto inst = trace::find_instance(insts, h.rid, 0).value();
  const auto events = trace::LocationEvents::build(span);
  const auto slice = diff.faulty.slice(inst.body_begin(), inst.body_end());
  const auto io = regions::classify_io(slice, events, inst);
  std::uint64_t fault_index = acl::kNoIndex;
  if (plan.kind == vm::FaultPlan::Kind::ResultBit) {
    fault_index = plan.dyn_index;
  } else if (plan.kind == vm::FaultPlan::Kind::RegionInputMemoryBit) {
    fault_index = inst.enter_index;
  }
  return regions::classify_tolerance(diff, inst, io, fault_index);
}

TEST(Tolerance, AdditiveRegionReducesErrorMagnitudeCase2) {
  // out = in0*in1 + 1: the multiply preserves relative error and the +1
  // shrinks it, so the region reduces error magnitude across its boundary —
  // the paper's Case 2.
  const auto h = Harness::make();
  const auto plan = vm::FaultPlan::region_input_bit(h.rid, 0, h.in_addr, 8, 51);
  const auto rep = tolerance_for(h, plan);
  EXPECT_EQ(rep.verdict, regions::ToleranceCase::Case2Reduced);
  EXPECT_GT(rep.corrupted_inputs, 0u);
  EXPECT_GT(rep.corrupted_outputs, 0u);
  EXPECT_GT(rep.max_input_error, 0.0);
  EXPECT_LT(rep.max_output_error, rep.max_input_error);
}

TEST(Tolerance, ErrorAmplifyingRegionIsNotTolerant) {
  // out = in*in doubles relative error: magnitude grows -> NotTolerant.
  hl::ProgramBuilder pb("t");
  auto in = pb.global_init_f64("in", {2.0});
  auto out = pb.global_f64("out", 1);
  const auto rid = pb.declare_region("r", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.region(rid, [&] {
      auto v = f.ld(in, 0);
      f.st(out, 0, v * v);
    });
    f.emit(f.ld(out, 0));
    f.ret();
  }
  auto mod = pb.finish();
  const auto in_addr = mod.global(*mod.find_global("in")).addr;

  acl::DiffOptions dopts;
  dopts.fault = vm::FaultPlan::region_input_bit(rid, 0, in_addr, 8, 51);
  const auto diff = acl::diff_run(mod, dopts);
  const auto span = std::span<const vm::DynInstr>(
      diff.faulty.records.data(), diff.usable_records());
  const auto insts = trace::segment_regions(span);
  const auto inst = trace::find_instance(insts, rid, 0).value();
  const auto events = trace::LocationEvents::build(span);
  const auto io = regions::classify_io(
      diff.faulty.slice(inst.body_begin(), inst.body_end()), events, inst);
  const auto rep =
      regions::classify_tolerance(diff, inst, io, inst.enter_index);
  EXPECT_EQ(rep.verdict, regions::ToleranceCase::NotTolerant);
  EXPECT_GT(rep.max_output_error, rep.max_input_error);
}

TEST(Tolerance, NoFaultMeansNotAffected) {
  const auto h = Harness::make();
  const auto rep = tolerance_for(h, vm::FaultPlan::none());
  EXPECT_EQ(rep.verdict, regions::ToleranceCase::NotAffected);
  EXPECT_EQ(rep.corrupted_inputs, 0u);
  EXPECT_EQ(rep.corrupted_outputs, 0u);
}

TEST(Tolerance, MaskedRegionIsCase1) {
  // Region whose output does not depend on the corrupted temp: out = in,
  // while tmp gets corrupted and dies -> Case 1 (masked).
  hl::ProgramBuilder pb("t");
  auto in = pb.global_init_f64("in", {2.0});
  auto tmp = pb.global_f64("tmp", 1);
  auto out = pb.global_f64("out", 1);
  const auto rid = pb.declare_region("r", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.region(rid, [&] {
      f.st(tmp, 0, f.ld(tmp, 0) * 3.0);  // consumes the corrupted input
      f.st(out, 0, f.ld(in, 0));
    });
    f.emit(f.ld(out, 0));
    f.ret();
  }
  auto mod = pb.finish();
  const auto tmp_addr = mod.global(*mod.find_global("tmp")).addr;

  acl::DiffOptions dopts;
  dopts.fault = vm::FaultPlan::region_input_bit(rid, 0, tmp_addr, 8, 60);
  const auto diff = acl::diff_run(mod, dopts);
  const auto span = std::span<const vm::DynInstr>(
      diff.faulty.records.data(), diff.usable_records());
  const auto insts = trace::segment_regions(span);
  const auto inst = trace::find_instance(insts, rid, 0).value();
  const auto events = trace::LocationEvents::build(span);
  const auto io = regions::classify_io(
      diff.faulty.slice(inst.body_begin(), inst.body_end()), events, inst);
  const auto rep =
      regions::classify_tolerance(diff, inst, io, inst.enter_index);
  EXPECT_EQ(rep.verdict, regions::ToleranceCase::Case1Masked);
  EXPECT_EQ(rep.corrupted_outputs, 0u);
  // The faulty run's final output is identical to the clean run's.
  EXPECT_EQ(diff.faulty_result.outputs, diff.clean_result.outputs);
}

TEST(Tolerance, NamesAreStable) {
  EXPECT_EQ(regions::tolerance_name(regions::ToleranceCase::Case1Masked),
            "case1-masked");
  EXPECT_EQ(regions::tolerance_name(regions::ToleranceCase::Divergent),
            "divergent");
}

}  // namespace
}  // namespace ft
