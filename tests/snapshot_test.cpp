// Snapshot/resume coverage: Vm::Snapshot round-trips (save/restore mid-run,
// run_until pausing, fork_from syncing) must be invisible to execution —
// bit-identical outputs, traps, retired counts and columnar traces versus a
// from-scratch run — and the snapshot-forked campaign scheduler must
// produce outcome counts identical to the from-scratch trial loop. Pinned
// for all ten workloads, clean, faulted and trapping.
#include <gtest/gtest.h>

#include <memory>

#include "apps/app.h"
#include "fault/campaign.h"
#include "fault/sites.h"
#include "trace/column.h"
#include "vm/decode.h"
#include "vm/interp.h"

namespace ft {
namespace {

bool same_record(const vm::DynInstr& a, const vm::DynInstr& b,
                 std::uint64_t index_offset = 0) {
  return a.index == b.index + index_offset && a.func == b.func &&
         a.block == b.block && a.instr == b.instr && a.op == b.op &&
         a.pred == b.pred && a.type == b.type && a.nops == b.nops &&
         a.line == b.line && a.aux == b.aux && a.result_loc == b.result_loc &&
         a.result_bits == b.result_bits && a.op_loc == b.op_loc &&
         a.op_bits == b.op_bits && a.op_type == b.op_type &&
         a.mem_addr == b.mem_addr && a.mem_size == b.mem_size &&
         a.branch_taken == b.branch_taken;
}

void expect_same_result(const vm::RunResult& a, const vm::RunResult& b) {
  EXPECT_EQ(a.trap, b.trap);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.fault_fired, b.fault_fired);
  EXPECT_TRUE(a.outputs == b.outputs);
}

class SnapshotEquivalence : public ::testing::TestWithParam<std::string> {};

// save() mid-run, then (a) the saved machine continues and (b) a fresh
// machine restores — both must finish bit-identically to a straight run.
TEST_P(SnapshotEquivalence, RoundTripIsBitIdentical) {
  const auto app = apps::build_app(GetParam());
  const auto prog = vm::DecodedProgram::decode(app.module);

  const auto baseline = vm::Vm::run(prog, app.base);
  ASSERT_TRUE(baseline.completed());
  const auto midpoint = baseline.instructions / 2;

  vm::Vm original(prog, app.base);
  original.run_until(midpoint);
  ASSERT_EQ(original.status(), vm::Vm::Status::Running);
  ASSERT_EQ(original.instructions_retired(), midpoint);
  const auto snap = original.snapshot();
  EXPECT_TRUE(original.state_equals(snap));

  // (a) The snapshotted machine keeps running unaffected.
  const auto continued = original.run();
  expect_same_result(continued, baseline);

  // (b) A fresh machine restored from the snapshot finishes identically.
  vm::Vm resumed(prog, app.base);
  resumed.restore(snap);
  EXPECT_TRUE(resumed.state_equals(snap));
  expect_same_result(resumed.run(), baseline);

  // (c) So does one constructed directly in the snapshotted state.
  vm::Vm constructed(prog, snap, app.base);
  expect_same_result(constructed.run(), baseline);
}

// Forking a faulty trial from a clean-prefix snapshot is bit-identical to
// running the faulty plan from scratch — including crashing plans and the
// hang budget.
TEST_P(SnapshotEquivalence, FaultedForkMatchesScratch) {
  const auto app = apps::build_app(GetParam());
  const auto prog = vm::DecodedProgram::decode(app.module);
  const auto clean = vm::Vm::run(prog, app.base);
  ASSERT_TRUE(clean.completed());

  const auto check_plan = [&](const vm::FaultPlan& plan,
                              std::uint64_t fork_at,
                              std::uint64_t max_instructions) {
    vm::VmOptions faulted = app.base;
    faulted.fault = plan;
    faulted.max_instructions = max_instructions;
    const auto scratch = vm::Vm::run(prog, faulted);

    vm::VmOptions prefix_opts = faulted;
    prefix_opts.fault = vm::FaultPlan::none();
    vm::Vm golden(prog, prefix_opts);
    golden.run_until(fork_at);
    ASSERT_EQ(golden.status(), vm::Vm::Status::Running);

    vm::Vm trial(prog, golden.snapshot(), faulted);
    expect_same_result(trial.run(), scratch);
  };

  // Mid-run register flip, forked exactly at the injection index.
  const std::uint64_t mid = std::min<std::uint64_t>(
      40000, clean.instructions * 3 / 4);
  check_plan(vm::FaultPlan::result_bit(mid, 40), mid,
             app.base.max_instructions);
  // High-bit flip that often traps (OutOfBounds / hang budget), forked
  // strictly before the injection.
  const std::uint64_t early = std::min<std::uint64_t>(
      5000, clean.instructions / 4);
  check_plan(vm::FaultPlan::result_bit(early, 62), early / 2, 400000);
  // Region-input memory flip forked exactly at the instance's RegionEnter
  // (the deepest fault-free prefix an input-class trial can fork at).
  if (app.main_region != ~std::uint32_t{0} && app.module.num_globals() > 0) {
    const auto sites =
        fault::enumerate_sites(app.module, app.main_region, 0, app.base);
    ASSERT_TRUE(sites.region_found);
    ASSERT_NE(sites.region_entry_index,
              fault::SiteEnumerationResult::kNoEntry);
    const auto& g = app.module.global(0);
    check_plan(vm::FaultPlan::region_input_bit(app.main_region, 0, g.addr,
                                               store_size(g.elem), 17),
               sites.region_entry_index, app.base.max_instructions);
  }
}

// A traced run paused by run_until and a traced run resumed from a
// snapshot both emit columnar records bit-identical to an uninterrupted
// traced run (the suffix trace matches row for row, offset by the resume
// point).
TEST_P(SnapshotEquivalence, ColumnarTraceSurvivesPauseAndResume) {
  const auto app = apps::build_app(GetParam());
  const auto prog = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(app.module));

  const auto traced_run = [&](trace::ColumnTrace& sink, auto&& drive) {
    vm::VmOptions opts = app.base;
    opts.program = prog.get();
    opts.column_sink = &sink;
    vm::Vm vm(*prog, opts);
    return drive(vm);
  };

  trace::ColumnTrace full(prog);
  const auto baseline =
      traced_run(full, [](vm::Vm& vm) { return vm.run(); });
  ASSERT_TRUE(baseline.completed());
  const auto midpoint = baseline.instructions / 2;

  // Pause mid-trace, snapshot, continue: one contiguous identical trace.
  trace::ColumnTrace paused(prog);
  vm::Vm::Snapshot snap;
  const auto paused_result = traced_run(paused, [&](vm::Vm& vm) {
    vm.run_until(midpoint);
    vm.save(snap);
    return vm.run();
  });
  expect_same_result(paused_result, baseline);
  ASSERT_EQ(paused.size(), full.size());
  for (std::size_t row = 0; row < full.size(); row += 97) {
    ASSERT_TRUE(same_record(full.record(row), paused.record(row)))
        << "at row " << row;
  }

  // Resume from the snapshot with an empty sink: the suffix trace.
  trace::ColumnTrace suffix(prog);
  const auto resumed_result = traced_run(suffix, [&](vm::Vm& vm) {
    vm.restore(snap);
    return vm.run();
  });
  expect_same_result(resumed_result, baseline);
  ASSERT_EQ(suffix.size(), full.size() - midpoint);
  for (std::size_t row = 0; row < suffix.size(); row += 89) {
    ASSERT_TRUE(same_record(full.record(midpoint + row), suffix.record(row),
                            midpoint))
        << "at suffix row " << row;
  }

  // Rewind: restoring a traced machine to an earlier point rolls the rows
  // past the restore point back, so the re-executed trace is contiguous
  // and identical to the uninterrupted one.
  trace::ColumnTrace rewound(prog);
  const auto rewound_result = traced_run(rewound, [&](vm::Vm& vm) {
    vm.run_until(midpoint);
    vm::Vm::Snapshot mid;
    vm.save(mid);
    vm.run_until(midpoint + (baseline.instructions - midpoint) / 2);
    vm.restore(mid);  // rows past `midpoint` must roll back
    return vm.run();
  });
  expect_same_result(rewound_result, baseline);
  ASSERT_EQ(rewound.size(), full.size());
  for (std::size_t row = 0; row < full.size(); row += 101) {
    ASSERT_TRUE(same_record(full.record(row), rewound.record(row)))
        << "at rewound row " << row;
  }
}

// The snapshot-forked campaign scheduler must report outcome counts
// identical to the from-scratch trial loop on every application (clean,
// faulted and trapping trials all occur across these populations), while
// actually reusing prefixes.
TEST_P(SnapshotEquivalence, ForkedCampaignCountsMatchScratch) {
  const auto app = apps::build_app(GetParam());
  const auto prog = vm::DecodedProgram::decode(app.module);
  const auto sites = fault::enumerate_whole_program_sites(prog, app.base);
  ASSERT_TRUE(sites.region_found);
  const auto golden = vm::Vm::run(prog, app.base);
  ASSERT_TRUE(golden.completed());

  fault::CampaignConfig scratch_cfg;
  scratch_cfg.trials = 16;
  scratch_cfg.seed = 0xABCDull;
  scratch_cfg.fork.enabled = false;
  auto forked_cfg = scratch_cfg;
  forked_cfg.fork.enabled = true;

  util::ThreadPool pool(2);
  const auto scratch = fault::run_prepared_campaign(
      prog, fault::prepare_campaign(sites, fault::TargetClass::Internal,
                                    app.base, scratch_cfg),
      golden.outputs, app.verifier, pool);
  const auto forked = fault::run_prepared_campaign(
      prog, fault::prepare_campaign(sites, fault::TargetClass::Internal,
                                    app.base, forked_cfg),
      golden.outputs, app.verifier, pool);

  EXPECT_EQ(forked.trials, scratch.trials);
  EXPECT_EQ(forked.success, scratch.success);
  EXPECT_EQ(forked.failed, scratch.failed);
  EXPECT_EQ(forked.crashed, scratch.crashed);
  // The scratch path reports no prefix reuse; the forked path must.
  EXPECT_EQ(scratch.prefix_instructions_saved, 0u);
  EXPECT_EQ(scratch.snapshots_taken, 0u);
  EXPECT_GT(forked.prefix_instructions_saved, 0u);
  EXPECT_GT(forked.snapshots_taken, 0u);
  EXPECT_GT(forked.resume_depth, 0u);
  EXPECT_LT(forked.instructions_retired, scratch.instructions_retired);
}

INSTANTIATE_TEST_SUITE_P(AllApps, SnapshotEquivalence,
                         ::testing::ValuesIn(apps::all_app_names()),
                         [](const auto& info) { return info.param; });

// --- scheduler pieces ----------------------------------------------------------

TEST(ForkSchedule, SortsByBoundAndStaysDeterministic) {
  const auto app = apps::build_cg();
  const auto prog = vm::DecodedProgram::decode(app.module);
  const auto sites = fault::enumerate_whole_program_sites(prog, app.base);
  fault::CampaignConfig cfg;
  cfg.trials = 40;
  const auto prepared = fault::prepare_campaign(
      sites, fault::TargetClass::Internal, app.base, cfg);
  ASSERT_EQ(prepared.fork_bounds.size(), prepared.plans.size());
  for (std::size_t i = 0; i < prepared.plans.size(); ++i) {
    EXPECT_EQ(prepared.fork_bounds[i], prepared.plans[i].dyn_index);
  }
  const auto order = fault::fork_schedule(prepared);
  ASSERT_EQ(order.size(), prepared.plans.size());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(prepared.fork_bounds[order[i - 1]],
              prepared.fork_bounds[order[i]]);
  }
  EXPECT_TRUE(order == fault::fork_schedule(prepared));
}

TEST(ForkSchedule, InputCampaignBoundsAreTheRegionEntry) {
  const auto app = apps::build_cg();
  const auto& rd = app.analysis_regions.front();
  const auto sites = fault::enumerate_sites(app.module, rd.id, 0, app.base);
  ASSERT_TRUE(sites.region_found);
  ASSERT_NE(sites.region_entry_index, fault::SiteEnumerationResult::kNoEntry);
  fault::CampaignConfig cfg;
  cfg.trials = 8;
  const auto prepared = fault::prepare_campaign(
      sites, fault::TargetClass::Input, app.base, cfg);
  for (const auto bound : prepared.fork_bounds) {
    EXPECT_EQ(bound, sites.region_entry_index);
  }
}

TEST(PrepareSnapshots, WaypointsAreOrderedAndAssignable) {
  const auto app = apps::build_cg();
  const auto prog = vm::DecodedProgram::decode(app.module);
  const auto sites = fault::enumerate_whole_program_sites(prog, app.base);
  fault::CampaignConfig cfg;
  cfg.trials = 60;
  const auto prepared = fault::prepare_campaign(
      sites, fault::TargetClass::Internal, app.base, cfg);
  const auto snaps = fault::prepare_snapshots(prog, prepared);
  ASSERT_FALSE(snaps.empty());
  ASSERT_EQ(snaps.fork_waypoint.size(), prepared.plans.size());
  for (std::size_t i = 1; i < snaps.waypoints.size(); ++i) {
    EXPECT_GT(snaps.waypoints[i].index, snaps.waypoints[i - 1].index);
  }
  EXPECT_EQ(snaps.resume_depth, snaps.waypoints.back().index);
  for (std::size_t i = 0; i < prepared.plans.size(); ++i) {
    const auto w = snaps.fork_waypoint[i];
    if (w != 0) {
      EXPECT_LE(snaps.waypoints[w - 1].index, prepared.fork_bounds[i]);
    }
    if (w < snaps.waypoints.size()) {
      EXPECT_GT(snaps.waypoints[w].index, prepared.fork_bounds[i]);
    }
  }
  // Disabled forking prepares nothing.
  auto off = prepared;
  off.fork.enabled = false;
  EXPECT_TRUE(fault::prepare_snapshots(prog, off).empty());
}

TEST(RestoreDirty, IncrementalRestoreMatchesFullRestore) {
  const auto app = apps::build_cg();
  const auto prog = vm::DecodedProgram::decode(app.module);
  vm::Vm golden(prog, app.base);
  golden.run_until(60000);
  ASSERT_EQ(golden.status(), vm::Vm::Status::Running);
  const auto snap = golden.snapshot();
  EXPECT_GT(snap.resident_bytes(), app.module.memory_size());

  const auto baseline = golden.run();

  // A tracked machine constructed in the snapshotted state, run to
  // completion, then incrementally restored: only its own dirtied pages
  // are copied back, and the re-run is bit-identical.
  vm::VmOptions tracked = app.base;
  tracked.track_writes = true;
  vm::Vm vm(prog, snap, tracked);
  expect_same_result(vm.run(), baseline);
  vm.restore_dirty(snap);
  EXPECT_TRUE(vm.state_equals(snap));
  expect_same_result(vm.run(), baseline);
}

TEST(RunForkedTrial, OneShotMatchesRunTrial) {
  const auto app = apps::build_cg();
  const auto prog = vm::DecodedProgram::decode(app.module);
  const auto sites = fault::enumerate_whole_program_sites(prog, app.base);
  const auto golden = vm::Vm::run(prog, app.base);
  fault::CampaignConfig cfg;
  cfg.trials = 10;
  const auto prepared = fault::prepare_campaign(
      sites, fault::TargetClass::Internal, app.base, cfg);
  const auto snapshots = fault::prepare_snapshots(prog, prepared);
  for (std::size_t i = 0; i < prepared.plans.size(); ++i) {
    fault::TrialAccounting acct;
    const auto forked = fault::run_forked_trial(
        prog, prepared, snapshots, i, golden.outputs, app.verifier, &acct);
    const auto scratch = fault::run_trial(prog, prepared, prepared.plans[i],
                                          golden.outputs, app.verifier);
    EXPECT_EQ(forked, scratch) << "plan " << i;
    EXPECT_EQ(acct.prefix_saved, prepared.fork_bounds[i]);
  }
}

TEST(ForkFrom, IncrementalSyncTracksBothMachines) {
  const auto app = apps::build_cg();
  const auto prog = vm::DecodedProgram::decode(app.module);
  vm::VmOptions tracked = app.base;
  tracked.track_writes = true;

  vm::Vm cursor(prog, tracked);
  cursor.run_until(50000);
  ASSERT_EQ(cursor.status(), vm::Vm::Status::Running);

  vm::Vm trial(prog, tracked);
  trial.fork_from(cursor, /*full=*/true);
  EXPECT_TRUE(trial.state_equals(cursor.snapshot()));

  // Diverge the trial (run a faulty stretch), advance the cursor, then
  // sync incrementally: the trial must equal a straight golden advance.
  trial.set_fault(vm::FaultPlan::result_bit(50100, 13));
  trial.run_until(90000);
  cursor.run_until(120000);
  ASSERT_EQ(cursor.status(), vm::Vm::Status::Running);
  trial.fork_from(cursor, /*full=*/false);

  vm::Vm reference(prog, app.base);
  reference.run_until(120000);
  trial.set_fault(vm::FaultPlan::none());
  const auto from_sync = trial.run();
  expect_same_result(from_sync, reference.run());
}

TEST(RunUntil, PausesWithoutTrappingAndHonorsHangBudget) {
  const auto app = apps::build_cg();
  const auto prog = vm::DecodedProgram::decode(app.module);

  vm::Vm vm(prog, app.base);
  vm.run_until(1000);
  EXPECT_EQ(vm.status(), vm::Vm::Status::Running);
  EXPECT_EQ(vm.instructions_retired(), 1000u);
  vm.run_until(1000);  // idempotent at the mark
  EXPECT_EQ(vm.instructions_retired(), 1000u);

  // The hang budget still wins over a deeper mark.
  vm::VmOptions tight = app.base;
  tight.max_instructions = 2000;
  vm::Vm hung(prog, tight);
  hung.run_until(~std::uint64_t{0});
  EXPECT_EQ(hung.status(), vm::Vm::Status::Trapped);
  EXPECT_EQ(hung.trap(), vm::TrapKind::Hang);
  EXPECT_EQ(hung.instructions_retired(), 2000u);
}

TEST(ForkedCampaign, DeterministicAcrossRunsAndPoolSizes) {
  const auto app = apps::build_cg();
  const auto prog = vm::DecodedProgram::decode(app.module);
  const auto sites = fault::enumerate_whole_program_sites(prog, app.base);
  const auto golden = vm::Vm::run(prog, app.base);
  fault::CampaignConfig cfg;
  cfg.trials = 24;
  cfg.seed = 99;
  const auto prepared = fault::prepare_campaign(
      sites, fault::TargetClass::Internal, app.base, cfg);

  std::vector<fault::CampaignResult> results;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    util::ThreadPool pool(workers);
    results.push_back(fault::run_prepared_campaign(
        prog, prepared, golden.outputs, app.verifier, pool));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].success, results[0].success);
    EXPECT_EQ(results[i].failed, results[0].failed);
    EXPECT_EQ(results[i].crashed, results[0].crashed);
    EXPECT_EQ(results[i].early_exits, results[0].early_exits);
    EXPECT_EQ(results[i].instructions_retired,
              results[0].instructions_retired);
    EXPECT_EQ(results[i].prefix_instructions_saved,
              results[0].prefix_instructions_saved);
  }
}

}  // namespace
}  // namespace ft
