// MiniMPI runtime: collectives, point-to-point ordering, VM integration,
// per-rank trace files (the paper's parallel tracer shape, §IV-A), the
// abort/deadlock liveness model, record-and-replay of per-rank
// communication, and multi-rank campaign determinism.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "fault/rank_campaign.h"
#include "hl/builder.h"
#include "mpi/world.h"
#include "trace/collector.h"
#include "trace/column.h"
#include "trace/file.h"
#include "vm/decode.h"
#include "vm/interp.h"

namespace ft {
namespace {

TEST(World, AllreduceSum) {
  mpi::World world(4);
  std::vector<double> results(4);
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    results[rank] = ep.allreduce(static_cast<double>(rank + 1),
                                 ir::ReduceOp::Sum);
  });
  for (const double r : results) EXPECT_DOUBLE_EQ(r, 10.0);
}

TEST(World, AllreduceMinMax) {
  mpi::World world(3);
  std::vector<double> mins(3), maxs(3);
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    mins[rank] = ep.allreduce(static_cast<double>(rank), ir::ReduceOp::Min);
    maxs[rank] = ep.allreduce(static_cast<double>(rank), ir::ReduceOp::Max);
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(mins[r], 0.0);
    EXPECT_DOUBLE_EQ(maxs[r], 2.0);
  }
}

TEST(World, RepeatedCollectivesStayInSync) {
  mpi::World world(3);
  std::vector<double> finals(3);
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    double acc = static_cast<double>(rank);
    for (int i = 0; i < 50; ++i) {
      acc = ep.allreduce(acc, ir::ReduceOp::Sum) / 3.0 + rank;
    }
    finals[rank] = acc;
  });
  // All ranks see the same reduction sequence; totals differ only by rank.
  EXPECT_NEAR(finals[1] - finals[0], 1.0, 1e-9);
  EXPECT_NEAR(finals[2] - finals[1], 1.0, 1e-9);
}

TEST(World, PointToPointFifo) {
  mpi::World world(2);
  std::vector<double> got;
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    if (rank == 0) {
      for (int i = 0; i < 10; ++i) ep.send(1, i * 1.5);
    } else {
      for (int i = 0; i < 10; ++i) got.push_back(ep.recv(0));
    }
  });
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(got[i], i * 1.5);
}

TEST(World, PingPong) {
  mpi::World world(2);
  double final0 = 0;
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    if (rank == 0) {
      ep.send(1, 1.0);
      final0 = ep.recv(1);
    } else {
      const double v = ep.recv(0);
      ep.send(0, v + 1.0);
    }
  });
  EXPECT_DOUBLE_EQ(final0, 2.0);
}

TEST(World, BarrierCompletes) {
  mpi::World world(4);
  std::atomic<int> after{0};
  world.launch([&](std::int64_t, vm::MpiEndpoint& ep) {
    ep.barrier();
    after.fetch_add(1);
    ep.barrier();
  });
  EXPECT_EQ(after.load(), 4);
}

ir::Module mpi_program() {
  hl::ProgramBuilder pb("mpiapp");
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto rank = f.mpi_rank();
    auto size = f.mpi_size();
    auto sum = f.mpi_allreduce(f.sitofp(rank + 1), ir::ReduceOp::Sum);
    f.emit(rank);
    f.emit(size);
    f.emit(sum);
    f.ret();
  }
  return pb.finish();
}

TEST(VmIntegration, RankSizeAllreduceThroughOpcodes) {
  auto mod = mpi_program();
  mpi::World world(3);
  std::vector<vm::RunResult> results(3);
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    vm::VmOptions opts;
    opts.mpi = &ep;
    results[rank] = vm::Vm::run(mod, opts);
  });
  for (std::int64_t r = 0; r < 3; ++r) {
    ASSERT_TRUE(results[r].completed());
    EXPECT_EQ(results[r].outputs[0].as_i64(), r);
    EXPECT_EQ(results[r].outputs[1].as_i64(), 3);
    EXPECT_DOUBLE_EQ(results[r].outputs[2].as_f64(), 6.0);  // 1+2+3
  }
}

TEST(VmIntegration, NullEndpointIsSingleRankWorld) {
  auto mod = mpi_program();
  const auto r = vm::Vm::run(mod);
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.outputs[0].as_i64(), 0);
  EXPECT_EQ(r.outputs[1].as_i64(), 1);
  EXPECT_DOUBLE_EQ(r.outputs[2].as_f64(), 1.0);  // identity allreduce
}

// The full null-endpoint contract of vm/mpi_endpoint.h, asserted opcode by
// opcode on both engines: rank 0, size 1, identity allreduce, no-op
// barrier, dropped send, zero recv.
TEST(VmIntegration, NullEndpointContractExplicit) {
  hl::ProgramBuilder pb("nullmpi");
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.emit(f.mpi_rank());                                     // 0
    f.emit(f.mpi_size());                                     // 1
    f.emit(f.mpi_allreduce(f.c_f64(2.5), ir::ReduceOp::Sum));  // identity
    f.emit(f.mpi_allreduce(f.c_f64(-7.0), ir::ReduceOp::Min));
    f.mpi_barrier();                                          // no-op
    f.mpi_send(f.c_i64(0), f.c_f64(42.0));                    // dropped
    f.emit(f.mpi_recv(f.c_i64(0)));                           // 0.0
    f.ret();
  }
  auto mod = pb.finish();

  const auto legacy = vm::Vm::run(mod);
  const auto program = vm::DecodedProgram::decode(mod);
  const auto decoded = vm::Vm::run(program);
  for (const auto* r : {&legacy, &decoded}) {
    ASSERT_TRUE(r->completed());
    ASSERT_EQ(r->outputs.size(), 5u);
    EXPECT_EQ(r->outputs[0].as_i64(), 0);
    EXPECT_EQ(r->outputs[1].as_i64(), 1);
    EXPECT_DOUBLE_EQ(r->outputs[2].as_f64(), 2.5);
    EXPECT_DOUBLE_EQ(r->outputs[3].as_f64(), -7.0);
    EXPECT_DOUBLE_EQ(r->outputs[4].as_f64(), 0.0);
  }
  // Where the single-rank-world analogy holds exactly (rank, size,
  // allreduce, barrier), a real one-rank World must agree.
  mpi::World world(1);
  world.launch([&](std::int64_t, vm::MpiEndpoint& ep) {
    EXPECT_EQ(ep.rank(), 0);
    EXPECT_EQ(ep.size(), 1);
    EXPECT_DOUBLE_EQ(ep.allreduce(2.5, ir::ReduceOp::Sum), 2.5);
    ep.barrier();
  });
}

// ---------------------------------------------------------------------------
// Liveness: exceptions, deadlock abort, bad ranks.
// ---------------------------------------------------------------------------

TEST(World, ExceptionFromOneRankPropagates) {
  // Rank 2 throws before joining the collective the other ranks already
  // sit in; the deadlock abort must release them (launch returns instead of
  // hanging) and the ORIGINAL exception must win over the WorldAborted the
  // released ranks see.
  mpi::World world(4);
  try {
    world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
      if (rank == 2) throw std::runtime_error("rank 2 exploded");
      (void)ep.allreduce(1.0, ir::ReduceOp::Sum);
    });
    FAIL() << "launch did not rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 2 exploded");
  }
  EXPECT_TRUE(world.aborted());
}

TEST(World, DeadlockAbortsDeterministically) {
  // Rank 0 receives from rank 1, which never sends: once rank 1 has left
  // the body, rank 0 is provably stuck and must see WorldAborted. Pinned
  // over repeated worlds — the abort is a property of the comm pattern,
  // not of scheduling.
  for (int round = 0; round < 20; ++round) {
    mpi::World world(2);
    EXPECT_THROW(
        world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
          if (rank == 0) (void)ep.recv(1);
        }),
        mpi::WorldAborted);
    EXPECT_TRUE(world.aborted());
  }
}

TEST(World, CollectiveMissingOneRankAborts) {
  // Three ranks join a collective, the fourth returns immediately — the
  // collective can never complete.
  mpi::World world(4);
  EXPECT_THROW(world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    if (rank != 3) (void)ep.allreduce(1.0, ir::ReduceOp::Sum);
  }),
               mpi::WorldAborted);
}

TEST(World, BadRankThrows) {
  mpi::World world(2);
  try {
    world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
      if (rank == 0) ep.send(17, 1.0);  // corrupted destination index
    });
    FAIL() << "launch did not rethrow";
  } catch (const mpi::BadRank&) {
  } catch (const mpi::WorldAborted&) {
    // Rank 1 may be the first recorded error only if it raced ahead; the
    // BadRank thrower never blocks, so it must win.
    FAIL() << "BadRank lost to WorldAborted";
  }
}

// ---------------------------------------------------------------------------
// Record-and-replay + multi-rank campaign determinism.
// ---------------------------------------------------------------------------

/// A compact rank-decomposed workload for runtime-bounded campaign tests:
/// a ring of p2p exchanges plus allreduced partial reductions over a small
/// array, with a verification output. Decomposition reads mpi_rank/size at
/// runtime (single-rank runs own everything).
ir::Module ring_program() {
  hl::ProgramBuilder pb("ring");
  constexpr std::int64_t kCells = 24;
  auto g_a = pb.global_f64("a", kCells);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto rank = f.mpi_rank();
    auto size = f.mpi_size();
    auto lo = rank * kCells / size;
    auto hi = (rank + 1) * kCells / size;
    f.for_("j", lo, hi, [&](hl::Value j) {
      f.st(g_a, j, f.sitofp(j) * 0.25 + 1.0);
    });
    f.for_("step", 0, 6, [&](hl::Value) {
      // Ring shift of the block boundary value, then a smoothing pass.
      auto right = (rank + 1) % size;
      auto left = (rank + size - 1) % size;
      f.mpi_send(right, f.ld(g_a, hi - 1));
      auto incoming = f.var_f64("incoming", 0.0);
      incoming.set(f.mpi_recv(left));
      f.st(g_a, lo, (f.ld(g_a, lo) + incoming.get()) * 0.5);
      f.for_("j", lo + 1, hi, [&](hl::Value j) {
        f.st(g_a, j, (f.ld(g_a, j) + f.ld(g_a, j - 1)) * 0.5);
      });
      auto part = f.var_f64("part", 0.0);
      f.for_("j", lo, hi, [&](hl::Value j) {
        part.set(part.get() + f.ld(g_a, j));
      });
      auto total = f.mpi_allreduce(part.get(), ir::ReduceOp::Sum);
      f.st(g_a, lo, f.ld(g_a, lo) + total * 1e-3);
    });
    auto part = f.var_f64("part", 0.0);
    f.for_("j", lo, hi,
           [&](hl::Value j) { part.set(part.get() + f.ld(g_a, j)); });
    auto total = f.mpi_allreduce(part.get(), ir::ReduceOp::Sum);
    auto pass = f.select(f.fabs_(total).lt(1e6), f.c_i64(1), f.c_i64(0));
    f.emit(pass);
    f.emit(total);
    f.ret();
  }
  return pb.finish();
}

/// Per-rank ColumnTraces of a 4-rank run must replay bit-identically
/// against a SOLO re-execution of each rank fed the recorded collective and
/// p2p values — the record-and-replay claim in world.h's header comment.
TEST(RecordReplay, SoloReplayIsBitIdenticalPerRank) {
  const auto mod = ring_program();
  const auto program = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(mod));
  constexpr std::int64_t kRanks = 4;

  std::vector<trace::ColumnTrace> sinks;
  for (std::int64_t r = 0; r < kRanks; ++r) sinks.emplace_back(program);
  mpi::RankRunOptions opts;
  for (auto& s : sinks) opts.sinks.push_back(&s);
  const auto report = mpi::run_ranks(*program, kRanks, opts);

  for (std::int64_t rank = 0; rank < kRanks; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    ASSERT_EQ(report.ranks[r].trap, vm::TrapKind::None);
    ASSERT_FALSE(report.comm[r].events.empty());

    // Solo re-execution: no world, just the recorded log.
    mpi::ReplayEndpoint replay(rank, kRanks, report.comm[r]);
    trace::ColumnTrace solo_sink(program);
    vm::VmOptions vo;
    vo.mpi = &replay;
    vo.column_sink = &solo_sink;
    const auto solo = vm::Vm::run(*program, vo);

    ASSERT_EQ(solo.trap, vm::TrapKind::None);
    EXPECT_TRUE(replay.exhausted());
    EXPECT_EQ(solo.outputs, report.ranks[r].outputs);
    ASSERT_EQ(solo_sink.size(), sinks[r].size());
    for (std::size_t row = 0; row < solo_sink.size(); ++row) {
      const auto a = sinks[r].record(row);
      const auto b = solo_sink.record(row);
      ASSERT_EQ(a.result_bits, b.result_bits) << "rank " << rank << " row "
                                              << row;
      ASSERT_EQ(a.op, b.op) << "rank " << rank << " row " << row;
      ASSERT_EQ(a.result_loc, b.result_loc);
      ASSERT_EQ(a.mem_addr, b.mem_addr);
    }
  }
}

TEST(RecordReplay, ReplayMismatchIsDetected) {
  const auto mod = ring_program();
  const auto program = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(mod));
  mpi::RankRunOptions opts;
  const auto report = mpi::run_ranks(*program, 2, opts);
  // Replaying rank 0's log as rank 1 diverges (different block bounds →
  // different op sequence) and must throw, not silently mis-replay.
  mpi::ReplayEndpoint replay(1, 2, report.comm[0]);
  vm::VmOptions vo;
  vo.mpi = &replay;
  EXPECT_THROW((void)vm::Vm::run(*program, vo), mpi::ReplayMismatch);
}

/// Campaign outcome counts across pool sizes 1/2/8, across repeated runs,
/// and with ForkPolicy on vs off — all bit-identical.
TEST(RankCampaign, CountsInvariantAcrossPoolsRunsAndForkPolicy) {
  const auto mod = ring_program();
  const auto program = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(mod));
  vm::VmOptions base;
  base.max_instructions = std::uint64_t{1} << 24;
  const auto verifier = fault::tolerance_verifier(1e-9);

  const auto enumeration =
      fault::enumerate_rank_sites(program, 4, base, /*keep_traces=*/false);
  fault::RankCampaignConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 40;
  const auto prepared = fault::prepare_rank_campaign(enumeration, base, cfg);
  auto prepared_nofork = prepared;
  prepared_nofork.fork.enabled = false;

  util::ThreadPool pool1(1), pool2(2), pool8(8);
  const auto a = fault::run_rank_campaign(*program, prepared, verifier, pool8);
  ASSERT_EQ(a.trials, 40u);
  ASSERT_EQ(a.masked_locally + a.absorbed_by_collective + a.propagated +
                a.corrupted_output + a.trapped,
            a.trials);

  const auto same = [&](const fault::RankCampaignResult& b) {
    EXPECT_EQ(a.masked_locally, b.masked_locally);
    EXPECT_EQ(a.absorbed_by_collective, b.absorbed_by_collective);
    EXPECT_EQ(a.propagated, b.propagated);
    EXPECT_EQ(a.corrupted_output, b.corrupted_output);
    EXPECT_EQ(a.trapped, b.trapped);
    EXPECT_EQ(a.propagation_depth, b.propagation_depth);
    EXPECT_EQ(a.rank_trials, b.rank_trials);
    EXPECT_EQ(a.rank_success, b.rank_success);
  };
  same(fault::run_rank_campaign(*program, prepared, verifier, pool1));
  same(fault::run_rank_campaign(*program, prepared, verifier, pool2));
  same(fault::run_rank_campaign(*program, prepared, verifier, pool8));
  // ForkPolicy never changes counts, only cost.
  same(fault::run_rank_campaign(*program, prepared_nofork, verifier, pool8));
}

/// Regression: a snapshot-forked trial whose injected rank exits through an
/// exception (corrupted send destination => BadRank; the peer is released
/// by the deadlock abort) retires zero instructions on that rank — the
/// instruction accounting must not subtract the skipped prefix from a
/// count that never included it (it underflowed to ~2^64 once).
TEST(RankCampaign, ForkedTrialAbnormalExitAccounting) {
  hl::ProgramBuilder pb("badsend");
  auto g_dest = pb.global_init_i64("dest", {1});
  auto g_acc = pb.global_f64("acc", 4);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    // A long communication-free prefix so a fork waypoint exists.
    f.for_("i", 0, 800, [&](hl::Value i) {
      f.st(g_acc, i % std::int64_t{4}, f.sitofp(i) * 0.5);
    });
    auto rank = f.mpi_rank();
    f.if_else(
        rank.eq(0),
        [&] {
          // The send destination is a loaded value — a single bit flip on
          // the Load's committed result makes it an invalid rank.
          f.mpi_send(f.ld(g_dest, 0), f.c_f64(1.0));
        },
        [&] { f.emit(f.mpi_recv(f.c_i64(0))); });
    f.emit(f.c_i64(1));
    f.ret();
  }
  const auto mod = pb.finish();
  const auto program = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(mod));
  vm::VmOptions base;

  const auto en =
      fault::enumerate_rank_sites(program, 2, base, /*keep_traces=*/true);
  // Rank 0's destination Load: the last Load before its first comm op.
  const auto& tr0 = *en.golden_traces[0];
  const auto fc = en.first_comm_index[0];
  ASSERT_NE(fc, fault::RankEnumeration::kNoComm);
  std::size_t load_row = fc;
  while (load_row > 0 && tr0.opcode_at(load_row) != ir::Opcode::Load) {
    load_row--;
  }
  ASSERT_EQ(tr0.opcode_at(load_row), ir::Opcode::Load);

  fault::PreparedRankCampaign prep;
  prep.nranks = 2;
  prep.plans = {vm::FaultPlan::result_bit(load_row, 40)};  // dest += 2^40
  prep.plan_rank = {0};
  prep.fork_bounds = {load_row};
  prep.run_opts = base;
  prep.rank_budget = {1u << 20, 1u << 20};
  prep.fork.min_gap = 1;  // let the waypoint land on this short prefix
  prep.golden_outputs = en.golden_outputs;
  prep.golden_comm = en.golden_comm;

  const auto snapshots = fault::prepare_rank_snapshots(*program, prep);
  ASSERT_GT(snapshots.snapshots_taken, 0u);

  std::uint64_t instr = 0, prefix = 0;
  const auto trial =
      fault::run_rank_trial(*program, prep, snapshots, 0,
                            fault::tolerance_verifier(1e-9), &instr, &prefix);
  EXPECT_EQ(trial.outcome, fault::RankOutcome::TrapAnyRank);
  EXPECT_GT(prefix, 0u);  // the fork really skipped prefix work
  // Sane accounting: bounded by what the two ranks could possibly retire.
  EXPECT_LT(instr, std::uint64_t{1} << 22);
}

TEST(RankCampaign, ForkBoundsAreRankLocalLegal) {
  const auto mod = ring_program();
  const auto program = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(mod));
  vm::VmOptions base;
  const auto enumeration =
      fault::enumerate_rank_sites(program, 3, base, /*keep_traces=*/true);
  fault::RankCampaignConfig cfg;
  cfg.nranks = 3;
  cfg.trials = 64;
  const auto prepared = fault::prepare_rank_campaign(enumeration, base, cfg);
  ASSERT_EQ(prepared.plans.size(), 64u);
  for (std::size_t i = 0; i < prepared.plans.size(); ++i) {
    const auto rank = static_cast<std::size_t>(prepared.plan_rank[i]);
    // Legal fork bound: never past the flip, never past the rank's first
    // blocking communication op.
    EXPECT_LE(prepared.fork_bounds[i], prepared.plans[i].dyn_index);
    EXPECT_LE(prepared.fork_bounds[i], enumeration.first_comm_index[rank]);
    // And the recorded first comm op really is a comm op in the trace.
    const auto& tr = *enumeration.golden_traces[rank];
    const auto fc = enumeration.first_comm_index[rank];
    ASSERT_LT(fc, tr.size());
    const auto op = tr.opcode_at(fc);
    EXPECT_TRUE(op == ir::Opcode::MpiSend || op == ir::Opcode::MpiRecv ||
                op == ir::Opcode::MpiAllreduce ||
                op == ir::Opcode::MpiBarrier);
  }
}

TEST(ParallelTracing, PerRankTraceFiles) {
  auto mod = mpi_program();
  const auto stem =
      (std::filesystem::temp_directory_path() / "ft_mpi_test").string();
  mpi::World world(3);
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    trace::TraceCollector c;
    vm::VmOptions opts;
    opts.mpi = &ep;
    opts.observer = &c;
    (void)vm::Vm::run(mod, opts);
    // Per-process trace files, written without any cross-rank synchronization.
    ASSERT_TRUE(trace::write_trace_file(
        trace::rank_trace_path(stem, static_cast<int>(rank)), c.trace()));
  });
  for (int r = 0; r < 3; ++r) {
    trace::Trace t;
    const auto path = trace::rank_trace_path(stem, r);
    ASSERT_TRUE(trace::read_trace_file(path, t));
    EXPECT_GT(t.size(), 0u);
    std::filesystem::remove(path);
  }
}

}  // namespace
}  // namespace ft
