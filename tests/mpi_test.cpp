// MiniMPI runtime: collectives, point-to-point ordering, VM integration,
// per-rank trace files (the paper's parallel tracer shape, §IV-A).
#include <gtest/gtest.h>

#include <filesystem>

#include "hl/builder.h"
#include "mpi/world.h"
#include "trace/collector.h"
#include "trace/file.h"
#include "vm/interp.h"

namespace ft {
namespace {

TEST(World, AllreduceSum) {
  mpi::World world(4);
  std::vector<double> results(4);
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    results[rank] = ep.allreduce(static_cast<double>(rank + 1),
                                 ir::ReduceOp::Sum);
  });
  for (const double r : results) EXPECT_DOUBLE_EQ(r, 10.0);
}

TEST(World, AllreduceMinMax) {
  mpi::World world(3);
  std::vector<double> mins(3), maxs(3);
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    mins[rank] = ep.allreduce(static_cast<double>(rank), ir::ReduceOp::Min);
    maxs[rank] = ep.allreduce(static_cast<double>(rank), ir::ReduceOp::Max);
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(mins[r], 0.0);
    EXPECT_DOUBLE_EQ(maxs[r], 2.0);
  }
}

TEST(World, RepeatedCollectivesStayInSync) {
  mpi::World world(3);
  std::vector<double> finals(3);
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    double acc = static_cast<double>(rank);
    for (int i = 0; i < 50; ++i) {
      acc = ep.allreduce(acc, ir::ReduceOp::Sum) / 3.0 + rank;
    }
    finals[rank] = acc;
  });
  // All ranks see the same reduction sequence; totals differ only by rank.
  EXPECT_NEAR(finals[1] - finals[0], 1.0, 1e-9);
  EXPECT_NEAR(finals[2] - finals[1], 1.0, 1e-9);
}

TEST(World, PointToPointFifo) {
  mpi::World world(2);
  std::vector<double> got;
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    if (rank == 0) {
      for (int i = 0; i < 10; ++i) ep.send(1, i * 1.5);
    } else {
      for (int i = 0; i < 10; ++i) got.push_back(ep.recv(0));
    }
  });
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(got[i], i * 1.5);
}

TEST(World, PingPong) {
  mpi::World world(2);
  double final0 = 0;
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    if (rank == 0) {
      ep.send(1, 1.0);
      final0 = ep.recv(1);
    } else {
      const double v = ep.recv(0);
      ep.send(0, v + 1.0);
    }
  });
  EXPECT_DOUBLE_EQ(final0, 2.0);
}

TEST(World, BarrierCompletes) {
  mpi::World world(4);
  std::atomic<int> after{0};
  world.launch([&](std::int64_t, vm::MpiEndpoint& ep) {
    ep.barrier();
    after.fetch_add(1);
    ep.barrier();
  });
  EXPECT_EQ(after.load(), 4);
}

ir::Module mpi_program() {
  hl::ProgramBuilder pb("mpiapp");
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto rank = f.mpi_rank();
    auto size = f.mpi_size();
    auto sum = f.mpi_allreduce(f.sitofp(rank + 1), ir::ReduceOp::Sum);
    f.emit(rank);
    f.emit(size);
    f.emit(sum);
    f.ret();
  }
  return pb.finish();
}

TEST(VmIntegration, RankSizeAllreduceThroughOpcodes) {
  auto mod = mpi_program();
  mpi::World world(3);
  std::vector<vm::RunResult> results(3);
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    vm::VmOptions opts;
    opts.mpi = &ep;
    results[rank] = vm::Vm::run(mod, opts);
  });
  for (std::int64_t r = 0; r < 3; ++r) {
    ASSERT_TRUE(results[r].completed());
    EXPECT_EQ(results[r].outputs[0].as_i64(), r);
    EXPECT_EQ(results[r].outputs[1].as_i64(), 3);
    EXPECT_DOUBLE_EQ(results[r].outputs[2].as_f64(), 6.0);  // 1+2+3
  }
}

TEST(VmIntegration, NullEndpointIsSingleRankWorld) {
  auto mod = mpi_program();
  const auto r = vm::Vm::run(mod);
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.outputs[0].as_i64(), 0);
  EXPECT_EQ(r.outputs[1].as_i64(), 1);
  EXPECT_DOUBLE_EQ(r.outputs[2].as_f64(), 1.0);  // identity allreduce
}

TEST(ParallelTracing, PerRankTraceFiles) {
  auto mod = mpi_program();
  const auto stem =
      (std::filesystem::temp_directory_path() / "ft_mpi_test").string();
  mpi::World world(3);
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    trace::TraceCollector c;
    vm::VmOptions opts;
    opts.mpi = &ep;
    opts.observer = &c;
    (void)vm::Vm::run(mod, opts);
    // Per-process trace files, written without any cross-rank synchronization.
    ASSERT_TRUE(trace::write_trace_file(
        trace::rank_trace_path(stem, static_cast<int>(rank)), c.trace()));
  });
  for (int r = 0; r < 3; ++r) {
    trace::Trace t;
    const auto path = trace::rank_trace_path(stem, r);
    ASSERT_TRUE(trace::read_trace_file(path, t));
    EXPECT_GT(t.size(), 0u);
    std::filesystem::remove(path);
  }
}

}  // namespace
}  // namespace ft
