// End-to-end integration: AnalysisSession driving real workloads — region
// campaigns, pattern discovery in the apps the paper names, the Table II
// error-magnitude dynamics, and Use Case pipelines. (Migrated from the
// removed FlipTracker shim; the session has the same per-app surface with
// shared_ptr snapshots.)
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "model/regression.h"
#include "util/bits.h"

namespace ft {
namespace {

fault::CampaignConfig quick_campaign(std::size_t trials) {
  fault::CampaignConfig cfg;
  cfg.trials = trials;
  cfg.seed = 99;
  return cfg;
}

TEST(Session, GoldenArtifactsAreConsistent) {
  core::AnalysisSession session(apps::build_cg());
  const auto golden = session.golden();
  EXPECT_TRUE(golden->completed());
  const auto tr = session.golden_trace();
  EXPECT_EQ(tr->size(), golden->instructions);
  EXPECT_FALSE(session.region_instances()->empty());
  EXPECT_GT(session.golden_events()->num_locations(), 0u);
  session.invalidate_trace();
  EXPECT_FALSE(session.region_instances()->empty());  // rebuilt lazily
}

TEST(Session, RegionCampaignOnCg) {
  core::AnalysisSession session(apps::build_cg());
  const auto* cg_b = session.app().find_region("cg_b");
  ASSERT_NE(cg_b, nullptr);
  const auto r = session.region_campaign(cg_b->id, 0,
                                         fault::TargetClass::Internal,
                                         quick_campaign(40));
  EXPECT_EQ(r.trials, 40u);
  EXPECT_EQ(r.success + r.failed + r.crashed, r.trials);
  EXPECT_GT(r.population_bits, 0u);
  // The decoded engine reports its work: every trial retires instructions.
  EXPECT_GT(r.instructions_retired, r.trials);
}

TEST(Session, AppCampaignRuns) {
  core::AnalysisSession session(apps::build_lu());
  const auto r = session.app_campaign(quick_campaign(30));
  EXPECT_EQ(r.trials, 30u);
  EXPECT_EQ(r.success + r.failed + r.crashed, r.trials);
}

TEST(Session, PatternRatesCoverAllApps) {
  for (const auto& name : apps::all_app_names()) {
    core::AnalysisSession session(apps::build_app(name));
    const auto rates = session.pattern_rates();
    EXPECT_GT(rates->total_instructions, 0u) << name;
    // Overwrite rate is near 1 for loop-dominated programs (paper: 0.94-1.0).
    EXPECT_GT(rates->of(patterns::PatternKind::DataOverwriting), 0.5) << name;
    // Condition rate lives in a plausible band.
    EXPECT_GT(rates->of(patterns::PatternKind::ConditionalStatement), 0.005)
        << name;
    EXPECT_LT(rates->of(patterns::PatternKind::ConditionalStatement), 0.5)
        << name;
    session.invalidate_trace();
  }
}

TEST(Session, IsHasHighestShiftRate) {
  // Fig. 11 / Table IV: IS is the shift-heavy benchmark.
  core::AnalysisSession is(apps::build_is());
  core::AnalysisSession lu(apps::build_lu());
  const auto ris = is.pattern_rates();
  const auto rlu = lu.pattern_rates();
  EXPECT_GT(ris->of(patterns::PatternKind::Shifting),
            rlu->of(patterns::PatternKind::Shifting));
  EXPECT_GT(ris->of(patterns::PatternKind::Shifting), 0.001);
}

TEST(Session, RegionDddgAndIo) {
  core::AnalysisSession session(apps::build_mg());
  const auto* mg_d = session.app().find_region("mg_d");
  ASSERT_NE(mg_d, nullptr);
  const auto g = session.region_dddg(mg_d->id, 0);
  EXPECT_GT(g->num_nodes(), 100u);
  const auto io = session.region_io(mg_d->id, 0);
  ASSERT_TRUE(io.has_value());
  EXPECT_FALSE(io->inputs.empty());
  EXPECT_FALSE(io->outputs.empty());
}

// --- paper-shaped findings -----------------------------------------------------

TEST(PaperFindings, MgShowsRepeatedAdditionsWithShrinkingError) {
  // Table II: flip a bit of a u[] element; the smoother's accumulations
  // shrink its error magnitude across V-cycle iterations.
  core::AnalysisSession session(apps::build_mg());
  const auto u_idx = session.app().module.find_global("u");
  ASSERT_TRUE(u_idx.has_value());
  const auto& u = session.app().module.global(*u_idx);
  // Element (2,2,3) of the 8^3 fine grid, bit 40 (the paper's bit choice).
  const auto addr = u.addr + ((2 * 8 + 2) * 8 + 3) * 8;
  const auto main_region = session.app().main_region;
  const auto plan =
      vm::FaultPlan::region_input_bit(main_region, 1, addr, 8, 40);
  const auto rep = session.patterns_for(plan);
  EXPECT_TRUE(rep.found(patterns::PatternKind::RepeatedAdditions));
  EXPECT_TRUE(rep.found(patterns::PatternKind::DataOverwriting));
}

TEST(PaperFindings, IsShiftMasksLowKeyBits) {
  core::AnalysisSession session(apps::build_is());
  const auto keys_idx = session.app().module.find_global("key_array");
  ASSERT_TRUE(keys_idx.has_value());
  const auto addr = session.app().module.global(*keys_idx).addr + 37 * 8;
  const auto* is_b = session.app().find_region("is_b");
  ASSERT_NE(is_b, nullptr);
  // Flip bit 1 (inside the 5 shifted-out bits) of one key at is_b entry.
  const auto plan = vm::FaultPlan::region_input_bit(is_b->id, 0, addr, 8, 1);
  const auto rep = session.patterns_for(plan);
  EXPECT_TRUE(rep.found(patterns::PatternKind::Shifting));
  // The fault must also be survivable end to end.
  const auto diff = session.diff_with(plan);
  EXPECT_TRUE(diff.faulty_result.completed());
}

TEST(PaperFindings, KmeansConditionalMasksFeatureFault) {
  core::AnalysisSession session(apps::build_kmeans());
  const auto feat_idx = session.app().module.find_global("feature");
  ASSERT_TRUE(feat_idx.has_value());
  const auto addr = session.app().module.global(*feat_idx).addr + 33 * 8;
  const auto* k_c = session.app().find_region("k_c");
  ASSERT_NE(k_c, nullptr);
  // Low-mantissa corruption of one feature: distances barely move, the
  // min-distance conditional picks the same cluster (Fig. 10).
  const auto plan = vm::FaultPlan::region_input_bit(k_c->id, 0, addr, 8, 4);
  const auto rep = session.patterns_for(plan);
  EXPECT_TRUE(rep.found(patterns::PatternKind::ConditionalStatement));
}

TEST(PaperFindings, LuleshDropsDeadHourglassTemporaries) {
  core::AnalysisSession session(apps::build_lulesh());
  const auto hg_idx = session.app().module.find_global("hourgam");
  ASSERT_TRUE(hg_idx.has_value());
  const auto addr = session.app().module.global(*hg_idx).addr + 5 * 8;
  const auto* l_a = session.app().find_region("l_a");
  ASSERT_NE(l_a, nullptr);
  const auto plan = vm::FaultPlan::region_input_bit(l_a->id, 3, addr, 8, 30);
  const auto rep = session.patterns_for(plan);
  // hourgam is rewritten per element and dies after the scatter: the
  // corruption must be eliminated by overwrite or death, and the ACL series
  // must return to zero (the Fig. 7 shape).
  EXPECT_TRUE(rep.found(patterns::PatternKind::DataOverwriting) ||
              rep.found(patterns::PatternKind::DeadCorruptedLocations));
  ASSERT_FALSE(rep.acl.count.empty());
  EXPECT_EQ(rep.acl.count.back(), 0u);
}

TEST(PaperFindings, LuleshIndexCorruptionCrashes) {
  core::AnalysisSession session(apps::build_lulesh());
  const auto nl_idx = session.app().module.find_global("nodelist");
  ASSERT_TRUE(nl_idx.has_value());
  const auto addr = session.app().module.global(*nl_idx).addr + 3 * 8;
  const auto* l_a = session.app().find_region("l_a");
  const auto plan = vm::FaultPlan::region_input_bit(l_a->id, 0, addr, 8, 44);
  const auto diff = session.diff_with(plan);
  EXPECT_FALSE(diff.faulty_result.completed());  // segfault analog
}

TEST(UseCase1, HardenedCgImprovesSuccessRate) {
  // Table III shape: DCL+overwrite hardening must not hurt, and with a
  // focused campaign over the sprnvc-era instructions it should help.
  core::AnalysisSession base(apps::build_cg());
  core::AnalysisSession hard(apps::build_cg_hardened({true, false}));
  const auto cfg = quick_campaign(120);
  const auto rb = base.app_campaign(cfg);
  const auto rh = hard.app_campaign(cfg);
  EXPECT_EQ(rb.trials, rh.trials);
  // Allow noise at this trial count, but hardening must not regress badly.
  EXPECT_GE(rh.success_rate(), rb.success_rate() - 0.1);
}

TEST(UseCase2, RatesPlusSrFitWithUsableR2) {
  // Mini version of the Table IV pipeline over four cheap apps.
  const std::vector<std::string> names = {"LU", "BT", "SP", "IS"};
  model::Matrix x(names.size(), patterns::kNumPatterns);
  std::vector<double> y;
  for (std::size_t i = 0; i < names.size(); ++i) {
    core::AnalysisSession session(apps::build_app(names[i]));
    const auto rates = session.pattern_rates();
    for (std::size_t j = 0; j < patterns::kNumPatterns; ++j) {
      x.at(i, j) = rates->rate[j];
    }
    session.invalidate_trace();
    y.push_back(session.app_campaign(quick_campaign(60)).success_rate());
  }
  model::BayesianLinearRegression reg;
  model::RegressionOptions opts;
  opts.prior_precision = 1e-8;  // near-OLS: 4 points interpolate
  reg.fit(x, y, opts);
  EXPECT_GT(reg.r_squared(x, y), 0.9);
}

}  // namespace
}  // namespace ft
