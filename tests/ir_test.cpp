// MiniIR structural tests: type/opcode properties, module layout, verifier
// diagnostics, printer.
#include <gtest/gtest.h>

#include "ir/module.h"
#include "ir/opcode.h"
#include "ir/print.h"
#include "ir/type.h"
#include "ir/verify.h"

namespace ft::ir {
namespace {

TEST(Types, WidthsAndSizes) {
  EXPECT_EQ(bit_width(Type::I1), 1u);
  EXPECT_EQ(bit_width(Type::I32), 32u);
  EXPECT_EQ(bit_width(Type::I64), 64u);
  EXPECT_EQ(bit_width(Type::F32), 32u);
  EXPECT_EQ(bit_width(Type::F64), 64u);
  EXPECT_EQ(bit_width(Type::Ptr), 64u);
  EXPECT_EQ(store_size(Type::I1), 1u);
  EXPECT_EQ(store_size(Type::I32), 4u);
  EXPECT_EQ(store_size(Type::F64), 8u);
  EXPECT_TRUE(is_int(Type::I1));
  EXPECT_TRUE(is_float(Type::F32));
  EXPECT_FALSE(is_int(Type::F64));
  EXPECT_EQ(type_name(Type::F64), "f64");
}

TEST(Opcodes, Properties) {
  EXPECT_TRUE(is_int_binary(Opcode::Add));
  EXPECT_TRUE(is_int_binary(Opcode::AShr));
  EXPECT_FALSE(is_int_binary(Opcode::FAdd));
  EXPECT_TRUE(is_float_binary(Opcode::FDiv));
  EXPECT_TRUE(is_float_unary(Opcode::FSqrt));
  EXPECT_TRUE(is_shift(Opcode::Shl));
  EXPECT_TRUE(is_shift(Opcode::LShr));
  EXPECT_FALSE(is_shift(Opcode::And));
  EXPECT_TRUE(is_cast(Opcode::Trunc));
  EXPECT_TRUE(is_narrowing_cast(Opcode::FPToSI));
  EXPECT_FALSE(is_narrowing_cast(Opcode::SExt));
  EXPECT_TRUE(is_terminator(Opcode::Ret));
  EXPECT_TRUE(is_terminator(Opcode::CondBr));
  EXPECT_FALSE(is_terminator(Opcode::Call));
  EXPECT_TRUE(is_region_marker(Opcode::RegionEnter));
  EXPECT_TRUE(has_result(Opcode::Load));
  EXPECT_FALSE(has_result(Opcode::Store));
  EXPECT_FALSE(has_result(Opcode::Br));
  EXPECT_EQ(opcode_name(Opcode::FAdd), "fadd");
  EXPECT_EQ(pred_name(CmpPred::Le), "le");
}

TEST(ModuleLayout, AssignsAlignedNonOverlappingAddresses) {
  Module m("t");
  m.add_global(Global{"a", Type::F64, 10, 0, {}});
  m.add_global(Global{"b", Type::I32, 3, 0, {}});
  m.add_global(Global{"c", Type::I64, 1, 0, {}});
  m.layout();
  const auto& a = m.global(0);
  const auto& b = m.global(1);
  const auto& c = m.global(2);
  EXPECT_GE(a.addr, kGlobalBase);
  EXPECT_EQ(a.addr % 8, 0u);
  EXPECT_GE(b.addr, a.addr + a.size_bytes());
  EXPECT_GE(c.addr, b.addr + b.size_bytes());
  EXPECT_EQ(c.addr % 8, 0u);
  EXPECT_GT(m.stack_base(), c.addr);
  EXPECT_GT(m.memory_size(), m.stack_base());
}

TEST(ModuleLayout, FindersWork) {
  Module m("t");
  m.add_global(Global{"data", Type::F64, 1, 0, {}});
  Function f;
  f.name = "main";
  m.add_function(std::move(f));
  m.add_region(RegionInfo{"r0", "f.cpp", 1, 2});
  EXPECT_TRUE(m.find_global("data").has_value());
  EXPECT_FALSE(m.find_global("absent").has_value());
  EXPECT_TRUE(m.find_function("main").has_value());
  EXPECT_TRUE(m.find_region("r0").has_value());
  EXPECT_FALSE(m.find_region("r9").has_value());
}

// --- verifier diagnostics (parameterized over corruption kinds) -------------

Module valid_module() {
  Module m("v");
  Function f;
  f.name = "main";
  BasicBlock bb{"entry", {}};
  Instruction add;
  add.op = Opcode::Add;
  add.type = Type::I64;
  add.result = 0;
  add.ops = {Operand::imm(1), Operand::imm(2)};
  bb.instrs.push_back(add);
  Instruction ret;
  ret.op = Opcode::Ret;
  bb.instrs.push_back(ret);
  f.blocks.push_back(std::move(bb));
  f.num_regs = 1;
  m.add_function(std::move(f));
  m.layout();
  return m;
}

TEST(Verifier, AcceptsValidModule) {
  auto m = valid_module();
  EXPECT_TRUE(is_valid(m)) << verify(m)[0];
}

TEST(Verifier, RejectsMissingTerminator) {
  auto m = valid_module();
  m.function(0).blocks[0].instrs.pop_back();
  EXPECT_FALSE(is_valid(m));
}

TEST(Verifier, RejectsUndefinedRegisterUse) {
  auto m = valid_module();
  auto& instrs = m.function(0).blocks[0].instrs;
  Instruction bad;
  bad.op = Opcode::Add;
  bad.type = Type::I64;
  bad.result = 1;
  bad.ops = {Operand::reg(7, Type::I64), Operand::imm(1)};
  m.function(0).num_regs = 8;
  instrs.insert(instrs.end() - 1, bad);
  EXPECT_FALSE(is_valid(m));
}

TEST(Verifier, RejectsDoubleDefinition) {
  auto m = valid_module();
  auto& instrs = m.function(0).blocks[0].instrs;
  Instruction dup = instrs[0];  // defines r0 again
  instrs.insert(instrs.end() - 1, dup);
  EXPECT_FALSE(is_valid(m));
}

TEST(Verifier, RejectsBadBranchTarget) {
  auto m = valid_module();
  auto& instrs = m.function(0).blocks[0].instrs;
  instrs.back() = Instruction{};
  instrs.back().op = Opcode::Br;
  instrs.back().ops = {Operand::block(9)};
  EXPECT_FALSE(is_valid(m));
}

TEST(Verifier, RejectsTypeMismatchedBinary) {
  auto m = valid_module();
  auto& add = m.function(0).blocks[0].instrs[0];
  add.ops[0].type = Type::F64;
  EXPECT_FALSE(is_valid(m));
}

TEST(Verifier, RejectsIntOpOnFloatType) {
  auto m = valid_module();
  auto& add = m.function(0).blocks[0].instrs[0];
  add.type = Type::F64;
  add.ops[0].type = Type::F64;
  add.ops[1].type = Type::F64;
  EXPECT_FALSE(is_valid(m));
}

TEST(Verifier, RejectsCmpWithoutPredicate) {
  auto m = valid_module();
  auto& add = m.function(0).blocks[0].instrs[0];
  add.op = Opcode::ICmp;
  add.type = Type::I1;
  add.ops[0].type = Type::I1;
  add.ops[1].type = Type::I1;
  EXPECT_FALSE(is_valid(m));
}

TEST(Verifier, RejectsBadCallArity) {
  auto m = valid_module();
  Function callee;
  callee.name = "callee";
  callee.params = {{Type::I64, "x"}};
  BasicBlock bb{"entry", {}};
  Instruction ret;
  ret.op = Opcode::Ret;
  bb.instrs.push_back(ret);
  callee.blocks.push_back(std::move(bb));
  const auto cid = m.add_function(std::move(callee));
  auto& instrs = m.function(0).blocks[0].instrs;
  Instruction call;
  call.op = Opcode::Call;
  call.type = Type::I64;
  call.result = 5;
  call.aux = cid;
  call.ops = {};  // missing the argument
  m.function(0).num_regs = 6;
  instrs.insert(instrs.end() - 1, call);
  EXPECT_FALSE(is_valid(m));
}

TEST(Verifier, RejectsUndeclaredRegionMarker) {
  auto m = valid_module();
  auto& instrs = m.function(0).blocks[0].instrs;
  Instruction enter;
  enter.op = Opcode::RegionEnter;
  enter.aux = 3;  // no region declared
  instrs.insert(instrs.end() - 1, enter);
  EXPECT_FALSE(is_valid(m));
}

TEST(Verifier, RejectsEntryWithParams) {
  auto m = valid_module();
  m.function(0).params = {{Type::I64, "x"}};
  EXPECT_FALSE(is_valid(m));
}

TEST(Printer, InstructionToString) {
  auto m = valid_module();
  const auto s = to_string(m.function(0).blocks[0].instrs[0], m);
  EXPECT_NE(s.find("add"), std::string::npos);
  EXPECT_NE(s.find("%r0"), std::string::npos);
}

}  // namespace
}  // namespace ft::ir
