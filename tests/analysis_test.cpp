// The composable analysis API: AnalysisSession caching and thread safety,
// declarative AnalysisRequest execution, cross-region campaign batching,
// seed determinism across pool sizes and execution modes, and the
// observer-pipeline gating semantics.
#include <gtest/gtest.h>

#include <thread>

#include "core/analysis.h"
#include "hl/builder.h"
#include "jit/jit_program.h"
#include "trace/collector.h"

namespace ft {
namespace {

fault::CampaignConfig quick_campaign(std::size_t trials,
                                     std::uint64_t seed = 0xF11Dull) {
  fault::CampaignConfig cfg;
  cfg.trials = trials;
  cfg.seed = seed;
  return cfg;
}

// --- session caching -----------------------------------------------------------

TEST(AnalysisSession, ArtifactsAreCachedAndConsistent) {
  core::AnalysisSession session(apps::build_sp());
  const auto golden = session.golden();
  EXPECT_TRUE(golden->completed());
  const auto tr = session.golden_trace();
  EXPECT_EQ(tr->size(), golden->instructions);
  // Repeat accessors return the same snapshot, not a recomputation.
  EXPECT_EQ(session.golden_trace().get(), tr.get());
  EXPECT_EQ(session.golden().get(), golden.get());
  const auto instances = session.region_instances();
  EXPECT_FALSE(instances->empty());
  EXPECT_EQ(session.region_instances().get(), instances.get());
  EXPECT_GT(session.golden_events()->num_locations(), 0u);
}

TEST(AnalysisSession, InvalidateTraceRebuildsEqualArtifacts) {
  core::AnalysisSession session(apps::build_sp());
  const auto tr = session.golden_trace();
  const auto n1 = tr->size();
  const auto e1 = session.golden_events()->num_locations();
  session.invalidate_trace();
  // The old snapshot stays valid for concurrent readers...
  EXPECT_EQ(tr->size(), n1);
  // ...and the rebuilt artifacts are equal (the VM is deterministic).
  const auto tr2 = session.golden_trace();
  EXPECT_NE(tr2.get(), tr.get());
  EXPECT_EQ(tr2->size(), n1);
  EXPECT_EQ(session.golden_events()->num_locations(), e1);
}

TEST(AnalysisSession, RegionSitesMatchLegacyEnumeration) {
  core::AnalysisSession session(apps::build_cg());
  const auto& spec = session.app();
  for (const auto& rd : spec.analysis_regions) {
    const auto cached = session.region_sites(rd.id, 0);
    const auto legacy =
        fault::enumerate_sites(spec.module, rd.id, 0, spec.base);
    ASSERT_EQ(cached->region_found, legacy.region_found) << rd.name;
    EXPECT_EQ(cached->fault_free_instructions,
              legacy.fault_free_instructions);
    ASSERT_EQ(cached->sites.internal.size(), legacy.sites.internal.size());
    EXPECT_EQ(cached->sites.internal_bits(), legacy.sites.internal_bits());
    ASSERT_EQ(cached->sites.input.size(), legacy.sites.input.size());
    for (std::size_t i = 0; i < cached->sites.input.size(); ++i) {
      EXPECT_EQ(cached->sites.input[i].address,
                legacy.sites.input[i].address);
    }
    // Cached: second lookup is the same object.
    EXPECT_EQ(session.region_sites(rd.id, 0).get(), cached.get());
  }
}

TEST(AnalysisSession, SharedAcrossThreadsYieldsOneSnapshot) {
  core::AnalysisSession session(apps::build_sp());
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const trace::ColumnTrace>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { seen[t] = session.golden_trace(); });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t].get(), seen[0].get());
  }
}

// --- campaign determinism ------------------------------------------------------

TEST(CampaignDeterminism, IdenticalCountsAcrossPoolSizes) {
  core::AnalysisSession session(apps::build_cg());
  const auto* cg_b = session.app().find_region("cg_b");
  ASSERT_NE(cg_b, nullptr);

  std::vector<fault::CampaignResult> results;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    util::ThreadPool pool(workers);
    auto cfg = quick_campaign(12, /*seed=*/77);
    cfg.pool = &pool;
    results.push_back(session.region_campaign(
        cg_b->id, 0, fault::TargetClass::Internal, cfg));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].trials, results[0].trials);
    EXPECT_EQ(results[i].success, results[0].success);
    EXPECT_EQ(results[i].failed, results[0].failed);
    EXPECT_EQ(results[i].crashed, results[0].crashed);
    EXPECT_EQ(results[i].population_bits, results[0].population_bits);
  }
}

TEST(CampaignDeterminism, BatchedMatchesLegacyAndFacadeFlow) {
  auto session = std::make_shared<core::AnalysisSession>(apps::build_cg());
  const auto cfg = quick_campaign(10, /*seed=*/42);

  const auto run_mode = [&](core::ExecutionMode mode) {
    return core::run_analysis(core::AnalysisRequest()
                                  .session(session)
                                  .region("cg_a")
                                  .region("cg_b")
                                  .target(fault::TargetClass::Internal)
                                  .target(fault::TargetClass::Input)
                                  .success_rates(cfg)
                                  .execution(mode));
  };
  const auto batched = run_mode(core::ExecutionMode::Batched);
  const auto legacy = run_mode(core::ExecutionMode::LegacyPerRegion);

  ASSERT_EQ(batched.entries.size(), 4u);
  ASSERT_EQ(legacy.entries.size(), batched.entries.size());
  for (std::size_t i = 0; i < batched.entries.size(); ++i) {
    const auto& b = batched.entries[i].campaign;
    const auto& l = legacy.entries[i].campaign;
    EXPECT_EQ(b.trials, l.trials);
    EXPECT_EQ(b.success, l.success);
    EXPECT_EQ(b.failed, l.failed);
    EXPECT_EQ(b.crashed, l.crashed);

    // And both match the imperative per-region session call.
    const auto& e = batched.entries[i];
    const auto direct =
        session->region_campaign(e.region_id, e.instance, e.target, cfg);
    EXPECT_EQ(b.success, direct.success);
    EXPECT_EQ(b.failed, direct.failed);
    EXPECT_EQ(b.crashed, direct.crashed);
  }
}

// --- cross-region batching -----------------------------------------------------

TEST(Batching, MultiRegionRequestDispatchesOnePoolBatch) {
  util::ThreadPool pool(2);
  const auto report =
      core::run_analysis(core::AnalysisRequest()
                             .app("CG")
                             .analysis_regions()
                             .target(fault::TargetClass::Internal)
                             .target(fault::TargetClass::Input)
                             .success_rates(quick_campaign(6))
                             .pool(&pool));

  // Every (region, target) campaign of the request went through exactly ONE
  // parallel_for dispatch: regions execute concurrently on the shared pool
  // instead of serializing between per-region campaigns.
  EXPECT_EQ(pool.parallel_for_calls(), 1u);
  EXPECT_EQ(report.pool_batches, 1u);
  EXPECT_GT(report.campaign_units, 1u);
  EXPECT_EQ(report.pool_workers, 2u);

  std::size_t sum = 0;
  for (const auto& e : report.entries) {
    if (e.region_found) {
      EXPECT_EQ(e.campaign.trials, 6u);
      EXPECT_EQ(e.campaign.success + e.campaign.failed + e.campaign.crashed,
                e.campaign.trials);
    }
    sum += e.campaign.trials;
  }
  EXPECT_EQ(report.total_trials, sum);
  EXPECT_GT(report.total_trials, 0u);
  EXPECT_GT(report.campaign_ms, 0.0);
  EXPECT_GT(report.trials_per_second(), 0.0);
}

TEST(Batching, CampaignConfigPoolIsHonored) {
  // run_campaign's contract (CampaignConfig::pool) must hold through the
  // declarative path too when no request-level pool is set.
  util::ThreadPool pool(2);
  auto cfg = quick_campaign(5);
  cfg.pool = &pool;
  const auto report = core::run_analysis(
      core::AnalysisRequest().app("CG").region("cg_a").success_rates(cfg));
  EXPECT_EQ(pool.parallel_for_calls(), 1u);
  EXPECT_EQ(report.pool_workers, 2u);
}

TEST(Batching, LegacyModeDispatchesPerUnit) {
  util::ThreadPool pool(2);
  const auto report =
      core::run_analysis(core::AnalysisRequest()
                             .app("CG")
                             .region("cg_a")
                             .region("cg_b")
                             .success_rates(quick_campaign(5))
                             .pool(&pool)
                             .execution(core::ExecutionMode::LegacyPerRegion));
  EXPECT_EQ(report.campaign_units, 2u);
  EXPECT_EQ(report.pool_batches, 2u);
  EXPECT_EQ(pool.parallel_for_calls(), 2u);
}

// --- the request/report model --------------------------------------------------

TEST(AnalysisRequest, ReportCarriesAppAnalysesAndLookups) {
  const auto report = core::run_analysis(core::AnalysisRequest()
                                             .app("CG")
                                             .region("cg_b")
                                             .region_io()
                                             .success_rates(quick_campaign(5))
                                             .pattern_rates()
                                             .app_campaign(quick_campaign(8)));
  const auto* app = report.find_app("CG");
  ASSERT_NE(app, nullptr);
  EXPECT_GT(app->golden_instructions, 0u);
  ASSERT_TRUE(app->rates.has_value());
  EXPECT_GT(app->rates->total_instructions, 0u);
  ASSERT_TRUE(app->whole_app.has_value());
  EXPECT_EQ(app->whole_app->trials, 8u);
  // The whole-app campaign ran snapshot-forked: the report rolls up its
  // prefix-reuse counters.
  EXPECT_GT(report.snapshots_taken, 0u);
  EXPECT_GT(report.instructions_saved, 0u);
  EXPECT_GT(report.max_resume_depth, 0u);
  EXPECT_GT(app->whole_app->prefix_instructions_saved, 0u);

  const auto* entry =
      report.find("CG", "cg_b", fault::TargetClass::Internal);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->region_found);
  ASSERT_TRUE(entry->io.has_value());
  EXPECT_FALSE(entry->io->inputs.empty());
  EXPECT_EQ(entry->campaign.trials, 5u);
  EXPECT_EQ(report.find("CG", "cg_b", fault::TargetClass::Input), nullptr);
}

TEST(AnalysisRequest, OpcodeProfileRanksCoverageAndJitSplit) {
  const auto report = core::run_analysis(
      core::AnalysisRequest().app("CG").opcode_profile());
  const auto* app = report.find_app("CG");
  ASSERT_NE(app, nullptr);
  ASSERT_TRUE(app->opcode_profile.has_value());
  const auto& prof = *app->opcode_profile;

  // Clean run: every dispatched instruction retires, so the counts sum to
  // the golden instruction total and the compiled/deopt split partitions it.
  std::uint64_t sum = 0;
  for (const auto c : prof.counts) sum += c;
  EXPECT_EQ(sum, app->golden_instructions);
  EXPECT_EQ(prof.jit_compiled_dispatches + prof.jit_deopt_dispatches, sum);
  // The single-rank CG workload has no MiniMPI ops: full native coverage,
  // both dynamically and in the static instruction stream.
  EXPECT_EQ(prof.jit_deopt_dispatches, 0u);
  EXPECT_EQ(prof.jit_static_deopt, 0u);
  EXPECT_GT(prof.jit_static_compiled, 0u);

  // ranked() orders opcodes by retired-instruction share, descending, and
  // drops zero-count opcodes.
  const auto ranked = prof.ranked();
  ASSERT_FALSE(ranked.empty());
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].second, ranked[i].second);
  }
  for (const auto& [op, count] : ranked) {
    EXPECT_GT(count, 0u);
    EXPECT_EQ(count, prof.counts[static_cast<std::size_t>(op)]);
  }
}

TEST(AnalysisSession, CompilesNativeBackendWhenEnabled) {
  core::AnalysisSession session(apps::build_app("CG"));
  if (!jit::JitProgram::runtime_enabled()) {
    EXPECT_EQ(session.jit(), nullptr);
    return;
  }
  // The session's base options carry the compiled program, so campaign
  // preparation inherits native execution without any per-call wiring.
  ASSERT_NE(session.jit(), nullptr);
  EXPECT_EQ(session.app().base.jit, session.jit());
  EXPECT_EQ(&session.jit()->program(), session.program().get());
  EXPECT_GT(session.jit()->stats().compiled, 0u);
}

TEST(AnalysisRequest, UnknownRegionNameThrows) {
  EXPECT_THROW(
      (void)core::run_analysis(core::AnalysisRequest().app("CG").region(
          "no_such_region")),
      std::invalid_argument);
}

TEST(AnalysisRequest, MainLoopIterationsEnumerateInstances) {
  const auto report = core::run_analysis(
      core::AnalysisRequest().app("SP").main_loop_iterations());
  const auto iters =
      static_cast<std::size_t>(apps::build_sp().main_iters);
  EXPECT_EQ(report.entries.size(), iters);
  for (std::size_t i = 0; i < report.entries.size(); ++i) {
    EXPECT_EQ(report.entries[i].instance, i);
    EXPECT_TRUE(report.entries[i].region_found);
  }
}

// --- observer pipeline ---------------------------------------------------------

ir::Module gated_module(std::uint32_t* rid_out) {
  hl::ProgramBuilder pb("t");
  const auto rid = pb.declare_region("r", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto s = f.var_i64("s", 0);
    f.for_("i", 0, 40, [&](hl::Value i) { s.set(s.get() + i); });  // outside
    f.region(rid, [&] {
      f.for_("i", 0, 10, [&](hl::Value i) { s.set(s.get() + i); });
    });
    f.for_("i", 0, 40, [&](hl::Value i) { s.set(s.get() + i); });  // outside
    f.emit(s.get());
    f.ret();
  }
  *rid_out = rid;
  return pb.finish();
}

TEST(ObserverChain, EnabledIsOrOverStages) {
  trace::TraceCollector always_on;
  std::uint32_t rid = 0;
  const auto mod = gated_module(&rid);

  vm::ObserverChain empty;
  EXPECT_FALSE(empty.enabled());

  trace::TraceCollector sink;
  vm::RegionWindowGate gate(&sink, rid);
  vm::ObserverChain gated;
  gated.then(&gate);
  EXPECT_FALSE(gated.enabled());  // window not open yet

  vm::ObserverChain mixed;
  mixed.then(&gate).then(&always_on);
  EXPECT_TRUE(mixed.enabled());
}

TEST(ObserverChain, PerStageGatingSkipsDisabledStages) {
  std::uint32_t rid = 0;
  const auto mod = gated_module(&rid);

  trace::TraceCollector windowed_sink;
  vm::RegionWindowGate gate(&windowed_sink, rid);
  trace::TraceCollector full_sink;
  vm::ObserverChain chain;
  chain.then(&gate).then(&full_sink);
  vm::VmOptions opts;
  opts.observer = &chain;
  const auto run = vm::Vm::run(mod, opts);
  ASSERT_TRUE(run.completed());

  // The ungated stage saw the whole stream; the gated one only its window.
  EXPECT_EQ(full_sink.trace().size(), run.instructions);
  EXPECT_GT(windowed_sink.trace().size(), 10u);
  EXPECT_LT(windowed_sink.trace().size(), full_sink.trace().size() / 2);
  // The window includes its own markers.
  EXPECT_EQ(windowed_sink.trace().records.front().op,
            ir::Opcode::RegionEnter);
}

TEST(RegionWindowGate, SelfNestedRegionKeepsWindowOpen) {
  // A region whose body re-enters the same region id must not close the
  // outer window at the inner exit: the gated capture has to match the
  // segmenter's [enter, exit] span for the outer instance.
  hl::ProgramBuilder pb("t");
  const auto rid = pb.declare_region("r", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto s = f.var_i64("s", 0);
    f.region(rid, [&] {
      f.for_("i", 0, 5, [&](hl::Value i) { s.set(s.get() + i); });
      f.region(rid, [&] {  // nested instance of the SAME region
        f.for_("i", 0, 5, [&](hl::Value i) { s.set(s.get() + i); });
      });
      f.for_("i", 0, 5, [&](hl::Value i) { s.set(s.get() + i); });  // tail
    });
    f.emit(s.get());
    f.ret();
  }
  const auto mod = pb.finish();

  trace::TraceCollector all;
  vm::VmOptions aopts;
  aopts.observer = &all;
  ASSERT_TRUE(vm::Vm::run(mod, aopts).completed());
  const auto instances = trace::segment_regions(all.trace().span());
  const auto outer = trace::find_instance(instances, rid, 0);
  ASSERT_TRUE(outer.has_value());

  trace::TraceCollector windowed;
  vm::RegionWindowGate gate(&windowed, rid, /*instance=*/0);
  vm::VmOptions gopts;
  gopts.observer = &gate;
  ASSERT_TRUE(vm::Vm::run(mod, gopts).completed());

  // Markers included: the window is exactly the outer instance's span.
  EXPECT_EQ(windowed.trace().size(),
            outer->exit_index - outer->enter_index + 1);
  EXPECT_EQ(windowed.trace().records.back().op, ir::Opcode::RegionExit);
}

TEST(ObserverChain, StageFiltersSelectRecords) {
  std::uint32_t rid = 0;
  const auto mod = gated_module(&rid);
  trace::TraceCollector stores;
  vm::ObserverChain chain;
  chain.then(&stores,
             [](const vm::DynInstr& d) { return d.op == ir::Opcode::Store; });
  vm::VmOptions opts;
  opts.observer = &chain;
  ASSERT_TRUE(vm::Vm::run(mod, opts).completed());
  ASSERT_FALSE(stores.trace().empty());
  for (const auto& r : stores.trace().records) {
    EXPECT_EQ(r.op, ir::Opcode::Store);
  }
}

TEST(MultiObserver, EnabledReflectsChildren) {
  // A fully gated observer set must not defeat the VM fast path: with the
  // old always-true default the VM materialized every DynInstr even though
  // no child wanted records.
  std::uint32_t rid = 0;
  const auto mod = gated_module(&rid);
  trace::TraceCollector sink;
  vm::RegionWindowGate gate(&sink, rid);
  vm::MultiObserver multi;
  EXPECT_FALSE(multi.enabled());  // no children
  multi.add(&gate);
  EXPECT_FALSE(multi.enabled());  // gated child, window closed

  vm::VmOptions opts;
  opts.observer = &multi;
  const auto run = vm::Vm::run(mod, opts);
  ASSERT_TRUE(run.completed());
  // Only the region window (plus its markers) was delivered.
  EXPECT_GT(sink.trace().size(), 10u);
  EXPECT_LT(sink.trace().size(), run.instructions / 2);

  trace::TraceCollector always;
  multi.add(&always);
  EXPECT_TRUE(multi.enabled());
}

}  // namespace
}  // namespace ft
