// ACL table tests, including the paper's Fig. 3 worked example, the
// differential engine, and liveness/kill invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "acl/diff.h"
#include "acl/table.h"
#include "hl/builder.h"
#include "trace/collector.h"
#include "trace/events.h"
#include "util/bits.h"
#include "vm/interp.h"

namespace ft {
namespace {

// --- Fig. 3: hand-built record stream, taint mode -----------------------------
//
// Instr 1 writes Loc_1 (the injected corruption), 2 and 4 touch an
// unrelated location, 3 reads Loc_1 and writes Loc_2, 5 overwrites Loc_1
// with a clean value, 6 ends the stream. Expected ACL counts after each
// instruction: 1 1 2 2 1 0 (the last row of the paper's figure).

vm::DynInstr rec(std::uint64_t index, ir::Opcode op, vm::Location result,
                 std::initializer_list<vm::Location> reads) {
  vm::DynInstr d;
  d.index = index;
  d.op = op;
  d.result_loc = result;
  d.type = ir::Type::F64;
  unsigned k = 0;
  for (const auto l : reads) {
    d.op_loc[k] = l;
    d.op_type[k] = ir::Type::F64;
    k++;
  }
  d.nops = k;
  return d;
}

TEST(AclTable, Figure3WorkedExample) {
  constexpr vm::Location loc1 = 100, loc2 = 108, other = 200;
  std::vector<vm::DynInstr> records = {
      rec(0, ir::Opcode::Store, loc1, {}),        // 1: fault lands in Loc_1
      rec(1, ir::Opcode::Store, other, {}),       // 2: unrelated
      rec(2, ir::Opcode::Store, loc2, {loc1}),    // 3: Loc_1 -> Loc_2
      rec(3, ir::Opcode::Store, other, {}),       // 4: unrelated
      rec(4, ir::Opcode::Store, loc1, {}),        // 5: clean overwrite
      rec(5, ir::Opcode::Ret, vm::kNoLoc, {}),    // 6: end
  };
  const auto events = trace::LocationEvents::build(records);
  const auto acl = acl::build_acl_taint(records, events, loc1, 0);

  ASSERT_EQ(acl.count.size(), 6u);
  EXPECT_EQ(acl.count[0], 1u);
  EXPECT_EQ(acl.count[1], 1u);
  EXPECT_EQ(acl.count[2], 2u);
  EXPECT_EQ(acl.count[3], 2u);
  EXPECT_EQ(acl.count[4], 1u);  // Loc_1 overwritten by a clean value
  EXPECT_EQ(acl.count[5], 0u);  // Loc_2 dead at end of trace
  EXPECT_EQ(acl.max_count, 2u);

  EXPECT_EQ(acl.kills(acl::AclEventKind::KillOverwrite), 1u);
  EXPECT_EQ(acl.kills(acl::AclEventKind::KillEndOfTrace), 1u);
  EXPECT_EQ(acl.first_corruption_index, 0u);
}

TEST(AclTable, TaintKillDeadAtLastUse) {
  constexpr vm::Location loc1 = 100, loc2 = 108;
  // Loc_1 corrupted at 0; its only use is at 1 and it is never written
  // again -> it must die *at* instruction 1 (the consuming instruction).
  std::vector<vm::DynInstr> records = {
      rec(0, ir::Opcode::Store, loc1, {}),
      rec(1, ir::Opcode::Store, loc2, {loc1}),
      rec(2, ir::Opcode::Store, loc2, {}),  // clean overwrite of Loc_2
      rec(3, ir::Opcode::Ret, vm::kNoLoc, {}),
  };
  const auto events = trace::LocationEvents::build(records);
  const auto acl = acl::build_acl_taint(records, events, loc1, 0);
  ASSERT_EQ(acl.count.size(), 4u);
  EXPECT_EQ(acl.count[0], 1u);
  EXPECT_EQ(acl.count[1], 1u);  // Loc_1 died (dead), Loc_2 born
  EXPECT_EQ(acl.count[2], 0u);  // Loc_2 overwritten clean
  EXPECT_EQ(acl.kills(acl::AclEventKind::KillDead), 1u);
  EXPECT_EQ(acl.kills(acl::AclEventKind::KillOverwrite), 1u);
}

// --- differential engine ------------------------------------------------------

TEST(DiffRun, NoFaultMeansNoDifference) {
  hl::ProgramBuilder pb("t");
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto s = f.var_f64("s", 0.0);
    f.for_("i", 0, 20, [&](hl::Value i) { s.set(s.get() + f.sitofp(i)); });
    f.emit(s.get());
    f.ret();
  }
  auto mod = pb.finish();
  acl::DiffOptions opts;
  opts.fault = vm::FaultPlan::none();
  const auto diff = acl::diff_run(mod, opts);
  EXPECT_FALSE(diff.diverged());
  for (std::size_t i = 0; i < diff.usable_records(); ++i) {
    EXPECT_FALSE(diff.differs[i]);
  }
  EXPECT_EQ(diff.faulty_result.outputs, diff.clean_result.outputs);
}

TEST(DiffRun, ReserveRecordsIsHonoredOnTheLegacyPath) {
  // The legacy (non-columnar) diff path must pre-reserve its outputs from
  // DiffOptions::reserve_records exactly as the columnar path does, so
  // substrate A/B timings compare appending, not reallocation churn. A
  // hint far above what organic doubling would reach proves reserve ran.
  hl::ProgramBuilder pb("t");
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto s = f.var_f64("s", 0.0);
    f.for_("i", 0, 50, [&](hl::Value i) { s.set(s.get() + f.sitofp(i)); });
    f.emit(s.get());
    f.ret();
  }
  auto mod = pb.finish();
  acl::DiffOptions opts;
  opts.fault = vm::FaultPlan::result_bit(30, 1);
  const auto records = acl::diff_run(mod, opts).usable_records();
  ASSERT_GT(records, 0u);

  opts.reserve_records = records * 4;
  const auto reserved = acl::diff_run(mod, opts);
  EXPECT_EQ(reserved.usable_records(), records);
  EXPECT_GE(reserved.faulty.records.capacity(), records * 4);
  EXPECT_GE(reserved.clean_bits.capacity(), records * 4);
  EXPECT_GE(reserved.clean_op_bits.capacity(), records * 4);
  EXPECT_GE(reserved.differs.words().capacity(), (records * 4 + 63) / 64);

  // The cap still clamps the reserve (no over-allocation past max_records).
  opts.max_records = records / 2;
  const auto capped = acl::diff_run(mod, opts);
  EXPECT_TRUE(capped.truncated);
  EXPECT_LT(capped.faulty.records.capacity(), records * 4);
}

TEST(DiffRun, FaultShowsUpExactlyAtInjection) {
  hl::ProgramBuilder pb("t");
  auto arr = pb.global_init_f64("arr", {1.0, 2.0, 3.0, 4.0});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto s = f.var_f64("s", 0.0);
    f.for_("i", 0, 4, [&](hl::Value i) { s.set(s.get() + f.ld(arr, i)); });
    f.emit(s.get());
    f.ret();
  }
  auto mod = pb.finish();

  // Find a load to corrupt.
  trace::TraceCollector c;
  vm::VmOptions vopts;
  vopts.observer = &c;
  (void)vm::Vm::run(mod, vopts);
  std::uint64_t load_index = 0;
  for (const auto& r : c.trace().records) {
    if (r.op == ir::Opcode::Load &&
        r.result_bits == util::f64_to_bits(3.0)) {
      load_index = r.index;
    }
  }
  ASSERT_NE(load_index, 0u);

  acl::DiffOptions opts;
  opts.fault = vm::FaultPlan::result_bit(load_index, 51);
  const auto diff = acl::diff_run(mod, opts);
  ASSERT_FALSE(diff.diverged());
  // Nothing differs before the injection; the injected record differs.
  for (std::uint64_t i = 0; i < load_index; ++i) {
    EXPECT_FALSE(diff.differs[i]);
  }
  EXPECT_TRUE(diff.differs[load_index]);
  EXPECT_NE(diff.faulty_result.outputs, diff.clean_result.outputs);
}

TEST(DiffRun, ControlFlowDivergenceIsDetected) {
  hl::ProgramBuilder pb("t");
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto x = f.var_i64("x", 4);
    // Branch on x: corrupting the comparison flips control flow.
    f.if_else(x.get().gt(2), [&] { f.emit(f.c_i64(111)); },
              [&] { f.emit(f.c_i64(222)); });
    f.ret();
  }
  auto mod = pb.finish();
  trace::TraceCollector c;
  vm::VmOptions vopts;
  vopts.observer = &c;
  (void)vm::Vm::run(mod, vopts);
  std::uint64_t cmp_index = 0;
  for (const auto& r : c.trace().records) {
    if (r.op == ir::Opcode::ICmp) cmp_index = r.index;
  }
  acl::DiffOptions opts;
  opts.fault = vm::FaultPlan::result_bit(cmp_index, 0);  // flip the i1
  const auto diff = acl::diff_run(mod, opts);
  EXPECT_TRUE(diff.diverged());
  EXPECT_GT(diff.divergence_index, cmp_index);
  EXPECT_NE(diff.faulty_result.outputs, diff.clean_result.outputs);
}

TEST(DiffRun, CrashingFaultStillReportsOutcome) {
  hl::ProgramBuilder pb("t");
  auto arr = pb.global_init_i64("idx", {1});
  auto data = pb.global_f64("data", 4);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.emit(f.ld(data, f.ld(arr, 0)));
    f.ret();
  }
  auto mod = pb.finish();
  trace::TraceCollector c;
  vm::VmOptions vopts;
  vopts.observer = &c;
  (void)vm::Vm::run(mod, vopts);
  std::uint64_t idx_load = 0;
  for (const auto& r : c.trace().records) {
    if (r.op == ir::Opcode::Load && r.type == ir::Type::I64) {
      idx_load = r.index;
      break;
    }
  }
  acl::DiffOptions opts;
  opts.fault = vm::FaultPlan::result_bit(idx_load, 40);  // huge index
  const auto diff = acl::diff_run(mod, opts);
  EXPECT_EQ(diff.faulty_result.trap, vm::TrapKind::OutOfBounds);
  EXPECT_TRUE(diff.clean_result.completed());
}

// --- value-diff ACL over a real program ------------------------------------------

TEST(AclValueDiff, OverwriteKillsCorruption) {
  hl::ProgramBuilder pb("t");
  auto arr = pb.global_init_f64("arr", {1.0, 0.0});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto v = f.ld(arr, 0);
    f.st(arr, 1, v);          // propagate
    f.st(arr, 1, f.c_f64(9.0));  // clean overwrite
    f.emit(f.ld(arr, 1));
    f.ret();
  }
  auto mod = pb.finish();

  trace::TraceCollector c;
  vm::VmOptions vopts;
  vopts.observer = &c;
  (void)vm::Vm::run(mod, vopts);
  std::uint64_t load_idx = 0;
  for (const auto& r : c.trace().records) {
    if (r.op == ir::Opcode::Load &&
        r.result_bits == util::f64_to_bits(1.0)) {
      load_idx = r.index;
      break;
    }
  }

  acl::DiffOptions opts;
  opts.fault = vm::FaultPlan::result_bit(load_idx, 50);
  const auto diff = acl::diff_run(mod, opts);
  ASSERT_FALSE(diff.diverged());
  const auto events = trace::LocationEvents::build(
      std::span<const vm::DynInstr>(diff.faulty.records));
  const auto acl_series = acl::build_acl(diff, events);

  // Corruption was born, propagated, and fully eliminated by the overwrite
  // (outputs match the clean run).
  EXPECT_GT(acl_series.births(), 0u);
  EXPECT_GT(acl_series.kills(acl::AclEventKind::KillOverwrite), 0u);
  EXPECT_EQ(diff.faulty_result.outputs, diff.clean_result.outputs);
}

TEST(AclValueDiff, CountNeverNegativeAndEndsAtZeroWhenMasked) {
  // Property over several injection points: counts are sane.
  hl::ProgramBuilder pb("t");
  auto arr = pb.global_init_f64("arr", {1.0, 2.0, 3.0, 4.0});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto s = f.var_f64("s", 0.0);
    f.for_("i", 0, 4, [&](hl::Value i) { s.set(s.get() + f.ld(arr, i)); });
    f.st(arr, 0, f.c_f64(5.0));  // clean overwrite of arr[0]
    f.emit(s.get());
    f.ret();
  }
  auto mod = pb.finish();
  for (const std::uint64_t idx : {2ull, 5ull, 8ull, 11ull}) {
    acl::DiffOptions opts;
    opts.fault = vm::FaultPlan::result_bit(idx, 13);
    const auto diff = acl::diff_run(mod, opts);
    if (diff.diverged()) continue;
    const auto events = trace::LocationEvents::build(
        std::span<const vm::DynInstr>(diff.faulty.records));
    const auto acl_series = acl::build_acl(diff, events);
    for (std::size_t i = 1; i < acl_series.count.size(); ++i) {
      // Counts move by bounded steps and stay non-negative (unsigned).
      EXPECT_LE(acl_series.count[i],
                acl_series.count[i - 1] + 2u);
    }
    if (!acl_series.count.empty()) {
      EXPECT_EQ(acl_series.count.back(), 0u);  // end-of-trace cleanup
    }
  }
}

TEST(AclErrorMagnitude, MatchesEquation2) {
  const auto clean = util::f64_to_bits(4.0);
  const auto faulty = util::f64_to_bits(5.0);
  EXPECT_DOUBLE_EQ(acl::error_magnitude(clean, faulty, ir::Type::F64), 0.25);
  EXPECT_DOUBLE_EQ(acl::error_magnitude(clean, clean, ir::Type::F64), 0.0);
  EXPECT_TRUE(std::isinf(
      acl::error_magnitude(util::f64_to_bits(0.0), faulty, ir::Type::F64)));
  // Integer magnitudes.
  EXPECT_DOUBLE_EQ(acl::error_magnitude(10, 15, ir::Type::I64), 0.5);
}

TEST(AclEvents, KindNamesAreStable) {
  EXPECT_EQ(acl::acl_event_kind_name(acl::AclEventKind::Birth), "birth");
  EXPECT_EQ(acl::acl_event_kind_name(acl::AclEventKind::KillDead),
            "kill-dead");
}

}  // namespace
}  // namespace ft
