// Compositional-campaign equivalence and incremental re-analysis coverage
// (ISSUE 9). The composed engine (src/compose/) must report outcome counts
// bit-identical to the exhaustive snapshot-forked scheduler on every
// application — across pool sizes and fork on/off — and, against a warm
// artifact store, must re-summarize only the sections a one-function edit
// touched while every untouched section's summary key hits the store.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.h"
#include "compose/compose.h"
#include "core/analysis.h"
#include "fault/campaign.h"
#include "fault/sites.h"
#include "store/artifact_store.h"
#include "trace/column.h"
#include "trace/segment.h"
#include "util/thread_pool.h"
#include "vm/decode.h"
#include "vm/interp.h"

namespace ft {
namespace {

namespace fs = std::filesystem;

/// Semantic outcome-count equality: the fields that describe what the
/// faults DID. Accounting fields (instructions, snapshots, early exits)
/// legitimately differ between engines and are not compared.
[[nodiscard]] ::testing::AssertionResult same_counts(
    const fault::CampaignResult& a, const fault::CampaignResult& b) {
  if (a.trials == b.trials && a.success == b.success && a.failed == b.failed &&
      a.crashed == b.crashed && a.detected_recovered == b.detected_recovered &&
      a.detected_unrecoverable == b.detected_unrecoverable &&
      a.population_bits == b.population_bits) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "composed {trials=" << a.trials << " success=" << a.success
         << " failed=" << a.failed << " crashed=" << a.crashed
         << " rec=" << a.detected_recovered
         << " unrec=" << a.detected_unrecoverable << "} vs exhaustive {trials="
         << b.trials << " success=" << b.success << " failed=" << b.failed
         << " crashed=" << b.crashed << " rec=" << b.detected_recovered
         << " unrec=" << b.detected_unrecoverable << "}";
}

/// Restrict a prepared campaign to one section's plans (used only to
/// isolate the offending section after a count mismatch).
[[nodiscard]] fault::PreparedCampaign restrict_to(
    const fault::PreparedCampaign& prepared,
    const std::vector<std::uint32_t>& idxs) {
  fault::PreparedCampaign sub = prepared;
  sub.plans.clear();
  sub.fork_bounds.clear();
  for (const auto i : idxs) {
    sub.plans.push_back(prepared.plans[i]);
    sub.fork_bounds.push_back(prepared.fork_bounds[i]);
  }
  return sub;
}

/// After an aggregate mismatch, re-run each section's plan population in
/// isolation (composed vs exhaustive) and name the first section that
/// diverges — the hard-failure diagnostic ISSUE 9 asks for.
[[nodiscard]] std::string diagnose_sections(
    const vm::DecodedProgram& program, const trace::ColumnTrace& trace,
    const std::vector<trace::RegionInstance>& instances,
    const fault::PreparedCampaign& prepared, const compose::SectionPlan& plan,
    const std::vector<vm::OutputValue>& golden, const fault::Verifier& verify,
    util::ThreadPool& pool) {
  for (std::size_t s = 0; s < plan.sections.size(); ++s) {
    if (plan.section_plans[s].empty()) continue;
    const auto sub = restrict_to(prepared, plan.section_plans[s]);
    const auto subplan =
        compose::plan_sections(program, trace, instances, sub);
    const auto ex =
        fault::run_prepared_campaign(program, sub, golden, verify, pool);
    const auto co = compose::run_composed_campaign(program, sub, subplan,
                                                   golden, verify, pool);
    if (!same_counts(co.counts, ex)) {
      return "offending section " + std::to_string(s) + " [" +
             std::to_string(plan.sections[s].begin) + ", " +
             std::to_string(plan.sections[s].end) + ") with " +
             std::to_string(plan.section_plans[s].size()) + " plans";
    }
  }
  return "divergence not isolated to a single section (cross-section "
         "composition bug)";
}

class ComposeEquivalence : public ::testing::TestWithParam<std::string> {};

// Composed outcome counts must equal exhaustive run_prepared_campaign
// counts — per app, per pool size, fork on and off. The populations cover
// clean, faulted and trapping trials across the ten apps.
TEST_P(ComposeEquivalence, ComposedCountsMatchExhaustive) {
  auto session =
      std::make_shared<core::AnalysisSession>(apps::build_app(GetParam()));
  const auto program = session->program();
  const auto golden = session->golden();
  const auto trace = session->golden_trace();
  const auto instances = session->region_instances();
  const auto sites = session->whole_program_sites();
  const auto& verify = session->app().verifier;

  fault::CampaignConfig cfg;
  cfg.trials = 20;
  cfg.seed = 0x5EC7105Eull;
  for (const bool fork : {true, false}) {
    auto c = cfg;
    c.fork.enabled = fork;
    const auto prepared = fault::prepare_campaign(
        *sites, fault::TargetClass::Internal, session->app().base, c);
    util::ThreadPool ref_pool(4);
    const auto exhaustive = fault::run_prepared_campaign(
        *program, prepared, golden->outputs, verify, ref_pool);
    const auto plan =
        compose::plan_sections(*program, *trace, *instances, prepared);
    ASSERT_FALSE(plan.empty());
    ASSERT_EQ(plan.plan_section.size(), prepared.plans.size());

    for (const std::size_t workers : {1, 2, 8}) {
      util::ThreadPool pool(workers);
      const auto composed = compose::run_composed_campaign(
          *program, prepared, plan, golden->outputs, verify, pool);
      EXPECT_EQ(composed.sections_total, plan.sections.size());
      const auto ok = same_counts(composed.counts, exhaustive);
      if (!ok) {
        FAIL() << "app=" << GetParam() << " fork=" << fork
               << " pool=" << workers << ": " << ok.message() << "\n"
               << diagnose_sections(*program, *trace, *instances, prepared,
                                    plan, golden->outputs, verify, pool);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, ComposeEquivalence,
                         ::testing::ValuesIn(apps::all_app_names()),
                         [](const auto& info) { return info.param; });

// --- mutation-based incremental re-analysis --------------------------------

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "ft-compose-XXXXXX");
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    path = mkdtemp(buf.data());
  }
  ~TempDir() { fs::remove_all(path); }
};

inline constexpr std::uint32_t kNoPc = ~std::uint32_t{0};

/// The one-function constant tweak, pinned to a single static instruction:
/// which pc was edited and which pristine sections execute it. Summary keys
/// hash per-instruction code footprints (store::hash_section over
/// SectionInfo::pcs), so the edit invalidates exactly the sections whose
/// probe window executes this pc — plus every section whose entry snapshot
/// the changed values flow into.
struct Mutation {
  std::uint32_t pc = kNoPc;
  std::uint32_t func = 0;
  std::vector<std::size_t> sections;  // pristine sections executing pc
};

/// Apply the constant tweak to the LATEST-first-executing f64 immediate in
/// the trace: the mini-apps are one big function, so the edit is chosen at
/// instruction granularity — a constant in code that only runs late (the
/// final iteration or the verification tail) leaves every earlier section's
/// entry state and code footprint intact, which is what makes untouched
/// keys hit. A candidate must keep the golden run completing with an
/// UNCHANGED dynamic instruction count (same trace shape, so section
/// boundaries and fork bounds stay aligned and the incremental claim is
/// observable).
[[nodiscard]] Mutation mutate_one_instruction(
    apps::AppSpec& spec, const vm::DecodedProgram& prog,
    const compose::SectionPlan& plan, std::uint64_t golden_instrs) {
  const auto* code = prog.code();
  const std::size_t nsec = plan.sections.size();
  struct Candidate {
    std::size_t first_sec;
    std::uint32_t pc;
  };
  std::vector<Candidate> cands;
  for (std::uint32_t pc = 0; pc < prog.code_size(); ++pc) {
    const auto& d = code[pc];
    const auto& ins =
        spec.module.function(d.func).blocks[d.block].instrs[d.instr];
    bool has_immf = false;
    for (const auto& op : ins.ops) {
      has_immf = has_immf || op.kind == ir::OperandKind::ImmF;
    }
    if (!has_immf) continue;
    std::size_t first = nsec;
    for (std::size_t s = 0; s < nsec && first == nsec; ++s) {
      if (std::binary_search(plan.sections[s].pcs.begin(),
                             plan.sections[s].pcs.end(), pc)) {
        first = s;
      }
    }
    if (first == nsec) continue;  // never executed: editing it proves nothing
    cands.push_back({first, pc});
  }
  std::sort(cands.begin(), cands.end(), [](const auto& a, const auto& b) {
    return a.first_sec > b.first_sec;
  });
  for (const auto& c : cands) {
    const auto& d = code[c.pc];
    auto candidate = spec.module;
    for (auto& op :
         candidate.function(d.func).blocks[d.block].instrs[d.instr].ops) {
      if (op.kind == ir::OperandKind::ImmF) {
        op.imm_f = op.imm_f * 1.0009765625 + 0.0009765625;
      }
    }
    const auto decoded = vm::DecodedProgram::decode(candidate);
    const auto run = vm::Vm::run(decoded, spec.base);
    if (!run.completed() || run.instructions != golden_instrs) continue;
    Mutation mut;
    mut.pc = c.pc;
    mut.func = d.func;
    for (std::size_t s = 0; s < nsec; ++s) {
      if (std::binary_search(plan.sections[s].pcs.begin(),
                             plan.sections[s].pcs.end(), c.pc)) {
        mut.sections.push_back(s);
      }
    }
    spec.module = std::move(candidate);
    return mut;
  }
  return {};
}

class ComposeIncremental : public ::testing::TestWithParam<std::string> {};

// Cold populate -> warm replay -> one-function edit -> warm-incremental:
// the proof counters must show exactly the structurally-untouched sections
// hitting the store and only the affected ones re-summarized, with counts
// equal to cold from-scratch baselines (composed and exhaustive) on the
// mutated module.
TEST_P(ComposeIncremental, WarmStoreRecomputesOnlyAffectedSections) {
  // Honor a CI-shared store (cross-process summary replay): cold-run
  // assertions are gated off when the store may already be warm.
  const char* env = std::getenv("FT_STORE_DIR");
  const bool shared = env && *env;
  TempDir scratch;
  const std::string dir = shared ? std::string(env) : scratch.path + "/store";
  auto store = std::make_shared<store::ArtifactStore>(dir);

  auto app = apps::build_app(GetParam());
  auto session = std::make_shared<core::AnalysisSession>(app);
  session->attach_store(store);

  fault::CampaignConfig cfg;
  cfg.trials = 32;
  cfg.seed = 0x1C4E11ull;

  const auto cold = session->run_compositional(cfg);
  ASSERT_GT(cold.sections_total, 1u);
  if (!shared) {
    EXPECT_EQ(cold.summary_store_hits, 0u);
    EXPECT_GT(cold.summaries_computed, 0u);
    EXPECT_EQ(cold.trials_avoided, 0u);
  }

  // Same module, warm store: zero summarization, all summary keys hit.
  // LULESH is exempt from the avoided-trials check: its faults land in
  // persistent mesh arrays that are never fully overwritten and feed every
  // later time step, so no trial ever closes symbolically — re-execution is
  // semantically required, not a caching miss.
  const auto warm = session->run_compositional(cfg);
  EXPECT_TRUE(same_counts(warm.counts, cold.counts));
  EXPECT_EQ(warm.summaries_computed, 0u);
  EXPECT_GT(warm.summary_store_hits, 0u);
  EXPECT_LT(warm.sections_reexecuted, warm.sections_total);
  if (GetParam() != "LULESH") {
    EXPECT_GT(warm.trials_avoided, 0u);
  }

  // Replicate the engine's section decomposition to derive the structural
  // expectation for the edit: which summary keys MUST survive it.
  const auto golden = session->golden();
  const auto pristine = fault::prepare_campaign(
      *session->whole_program_sites(), fault::TargetClass::Internal, app.base,
      cfg);
  const auto plan = compose::plan_sections(*session->program(),
                                           *session->golden_trace(),
                                           *session->region_instances(),
                                           pristine);
  const std::size_t nsec = plan.sections.size();
  ASSERT_EQ(nsec, cold.sections_total);

  // One-instruction constant tweak in the latest-executing code.
  auto mutated = app;
  const auto mut = mutate_one_instruction(mutated, *session->program(), plan,
                                          golden->instructions);
  ASSERT_NE(mut.pc, kNoPc) << "no tweakable f64 constant in " << GetParam();
  ASSERT_NE(store::hash_module(mutated.module),
            store::hash_module(app.module));

  // A summary key survives the edit iff the section's entry snapshot is
  // upstream of the pc's first execution AND its probe window never
  // executes the edited pc. Everything else must be recomputed.
  const std::size_t probe_window =
      pristine.fork.probe_convergence ? pristine.fork.max_probes : 0;
  std::size_t expected_hits = 0;
  std::size_t expected_miss = 0;
  for (std::size_t i = 0; i + 1 < nsec; ++i) {
    if (plan.section_plans[i].empty()) continue;
    const std::size_t jmax = std::min(i + 1 + probe_window, nsec - 1);
    bool window_executes_edit = false;
    for (const auto s : mut.sections) {
      window_executes_edit = window_executes_edit || (s >= i && s < jmax);
    }
    const bool entry_changed = i > mut.sections.front();
    (entry_changed || window_executes_edit) ? expected_miss++
                                            : expected_hits++;
  }
  ASSERT_GT(expected_hits, 0u)
      << "edit at pc " << mut.pc << " invalidates every section";

  auto msession = std::make_shared<core::AnalysisSession>(mutated);
  msession->attach_store(store);
  const auto inc = msession->run_compositional(cfg);

  // Exactly the structurally-untouched sections hit (a shared store may
  // additionally hold summaries a previous process published for the
  // mutated module, so equality weakens to bounds there).
  if (shared) {
    EXPECT_GE(inc.summary_store_hits, expected_hits);
    EXPECT_LE(inc.summaries_computed, expected_miss);
  } else {
    EXPECT_EQ(inc.summary_store_hits, expected_hits);
    EXPECT_EQ(inc.summaries_computed, expected_miss);
  }
  EXPECT_LT(inc.sections_reexecuted, inc.sections_total);
  if (GetParam() != "LULESH") {
    EXPECT_GT(inc.trials_avoided, 0u);
  }

  // The incremental counts must equal BOTH cold from-scratch baselines on
  // the mutated module: composed (no store) and exhaustive.
  auto csession = std::make_shared<core::AnalysisSession>(mutated);
  const auto cold_mutated = csession->run_compositional(cfg);
  EXPECT_TRUE(same_counts(inc.counts, cold_mutated.counts));

  const auto prepared = fault::prepare_campaign(
      *msession->whole_program_sites(), fault::TargetClass::Internal,
      mutated.base, cfg);
  util::ThreadPool pool(4);
  const auto exhaustive = fault::run_prepared_campaign(
      *msession->program(), prepared, msession->golden()->outputs,
      mutated.verifier, pool);
  EXPECT_TRUE(same_counts(inc.counts, exhaustive));
}

INSTANTIATE_TEST_SUITE_P(EditedApps, ComposeIncremental,
                         ::testing::Values("CG", "MG", "LULESH"),
                         [](const auto& info) { return info.param; });

// --- summary codec ----------------------------------------------------------

TEST(SummaryCodec, RoundTripAndRejection) {
  compose::SectionSummary s;
  s.sites.resize(3);
  s.sites[0].kind = compose::SiteSummary::Kind::Masked;
  s.sites[1].kind = compose::SiteSummary::Kind::Delta;
  s.sites[1].mem = {{64, 0x0123456789ABCDEFull}, {4096, ~0ull}};
  s.sites[1].out = {{2, 42}};
  s.sites[2].kind = compose::SiteSummary::Kind::Diverged;

  const auto payload = compose::encode_summary(s);
  compose::SectionSummary back;
  ASSERT_TRUE(compose::decode_summary(payload, 3, back));
  ASSERT_EQ(back.sites.size(), 3u);
  EXPECT_EQ(back.sites[0].kind, compose::SiteSummary::Kind::Masked);
  EXPECT_EQ(back.sites[1].kind, compose::SiteSummary::Kind::Delta);
  EXPECT_EQ(back.sites[1].mem, s.sites[1].mem);
  EXPECT_EQ(back.sites[1].out, s.sites[1].out);
  EXPECT_EQ(back.sites[2].kind, compose::SiteSummary::Kind::Diverged);

  // Site-count mismatch, truncation and trailing garbage are all misses.
  EXPECT_FALSE(compose::decode_summary(payload, 2, back));
  EXPECT_FALSE(
      compose::decode_summary({payload.data(), payload.size() - 1}, 3, back));
  auto extended = payload;
  extended.push_back('\0');
  EXPECT_FALSE(compose::decode_summary(extended, 3, back));
}

}  // namespace
}  // namespace ft
