// Unit tests for src/util: bits, hash, rng, stats, thread pool, cli, table.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/bits.h"
#include "util/cli.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace ft::util {
namespace {

// --- bits ---------------------------------------------------------------------

TEST(Bits, F64RoundTrip) {
  for (const double v : {0.0, 1.0, -1.5, 3.141592653589793, 1e300, -1e-300}) {
    EXPECT_EQ(bits_to_f64(f64_to_bits(v)), v);
  }
}

TEST(Bits, F32RoundTrip) {
  for (const float v : {0.0f, 1.0f, -2.5f, 3.14f}) {
    EXPECT_EQ(bits_to_f32(f32_to_bits(v)), v);
  }
}

TEST(Bits, FlipBitChangesExactlyOneBit) {
  const std::uint64_t v = 0xDEADBEEFCAFEF00Dull;
  for (unsigned b = 0; b < 64; ++b) {
    const auto flipped = flip_bit(v, b);
    EXPECT_TRUE(differs_by_one_bit(v, flipped));
    EXPECT_EQ(flip_bit(flipped, b), v);  // involution
  }
}

TEST(Bits, TruncateTo) {
  EXPECT_EQ(truncate_to(0xFFFFFFFFFFFFFFFFull, 32), 0xFFFFFFFFull);
  EXPECT_EQ(truncate_to(0x1234ull, 64), 0x1234ull);
  EXPECT_EQ(truncate_to(0xFFull, 1), 1ull);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0x80000000ull, 32), -2147483648ll);
  EXPECT_EQ(sign_extend(0x7FFFFFFFull, 32), 2147483647ll);
  EXPECT_EQ(sign_extend(0x1ull, 1), -1ll);
  EXPECT_EQ(sign_extend(0x0ull, 1), 0ll);
}

// --- hash ---------------------------------------------------------------------

TEST(Hash64, MatchesPublishedFnv1aVectors) {
  // Reference vectors from the FNV spec (64-bit FNV-1a over raw bytes).
  EXPECT_EQ(Hash64{}.digest(), 0xcbf29ce484222325ull);
  EXPECT_EQ(hash_bytes("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(hash_bytes("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(hash_bytes("foobar", 6), 0x85944171f73967e8ull);
}

TEST(Hash64, StreamingEqualsOneShot) {
  const char text[] = "foobar";
  Hash64 h;
  for (const char c : {'f', 'o', 'o', 'b', 'a', 'r'}) {
    h.byte(static_cast<std::uint8_t>(c));
  }
  EXPECT_EQ(h.digest(), hash_bytes(text, 6));
  Hash64 split;
  split.bytes(text, 3).bytes(text + 3, 3);
  EXPECT_EQ(split.digest(), hash_bytes(text, 6));
}

TEST(Hash64, IntegersArePinnedLittleEndianFirst) {
  // A multi-byte integer must hash exactly like its LSB-first byte
  // sequence, on every host — the stability contract of the store keys.
  const std::uint8_t le_bytes[] = {0xEF, 0xBE, 0xAD, 0xDE};
  EXPECT_EQ(Hash64{}.u32(0xDEADBEEFu).digest(),
            hash_bytes(le_bytes, sizeof(le_bytes)));
  const std::uint8_t le64[] = {1, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(Hash64{}.u64(1).digest(), hash_bytes(le64, sizeof(le64)));
  EXPECT_NE(Hash64{}.u32(1).digest(), Hash64{}.u64(1).digest());
}

TEST(Hash64, FloatsHashTheirBitPattern) {
  EXPECT_EQ(Hash64{}.f64(1.5).digest(),
            Hash64{}.u64(f64_to_bits(1.5)).digest());
  EXPECT_NE(Hash64{}.f64(0.0).digest(), Hash64{}.f64(-0.0).digest());
}

TEST(Hash64, LengthPrefixPreventsConcatenationCollisions) {
  EXPECT_NE(Hash64{}.str("ab").str("c").digest(),
            Hash64{}.str("a").str("bc").digest());
  EXPECT_NE(Hash64{}.str("").str("x").digest(),
            Hash64{}.str("x").str("").digest());
}

TEST(Hash64, DomainTagsSeparateStreams) {
  EXPECT_NE(Hash64("ft.key.trace.v1").u64(7).digest(),
            Hash64("ft.key.golden.v1").u64(7).digest());
  // A tagged stream equals hashing the tag first, then the input.
  EXPECT_EQ(Hash64("tag").u64(7).digest(),
            Hash64{}.str("tag").u64(7).digest());
  // The section-summary domains must be mutually distinct — a summary blob
  // key may never collide with a window or entry-state digest built from
  // the same words.
  EXPECT_NE(Hash64("ft.section.v1").u64(7).digest(),
            Hash64("ft.section.window.v1").u64(7).digest());
  EXPECT_NE(Hash64("ft.section.v1").u64(7).digest(),
            Hash64("ft.key.summary.v1").u64(7).digest());
}

TEST(Hash64, CountPrefixSeparatesAdjacentLists) {
  // Two (count, items...) encodings whose flattened words agree but whose
  // split differs must hash apart — the framing hash_section and the
  // window digests rely on to keep adjacent variable-length lists from
  // colliding.
  EXPECT_NE(Hash64{}.u64(2).u32(1).u32(2).u64(1).u32(3).digest(),
            Hash64{}.u64(1).u32(1).u64(2).u32(2).u32(3).digest());
}

// --- rng ----------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(13), 13u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  EXPECT_NE(a(), child());
}

TEST(Randlc, MatchesNasFirstDraw) {
  // With the NAS defaults, the first randlc draw is a known constant.
  Randlc r;
  const double first = r.next();
  EXPECT_GT(first, 0.0);
  EXPECT_LT(first, 1.0);
  Randlc r2;
  EXPECT_EQ(r2.next(), first);  // deterministic
}

TEST(Randlc, StreamStaysInUnitInterval) {
  Randlc r(12345.0);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next();
    ASSERT_GT(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

// --- stats ---------------------------------------------------------------------

TEST(Stats, MeanAndStdev) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stdev(xs), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 5.0);
}

TEST(Stats, EmptyInputsAreSafe) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stdev({}), 0.0);
}

TEST(Stats, ZScores) {
  EXPECT_NEAR(z_for_confidence(0.95), 1.96, 1e-3);
  EXPECT_NEAR(z_for_confidence(0.99), 2.5758, 1e-3);
  EXPECT_NEAR(z_for_confidence(0.90), 1.6449, 1e-3);
}

TEST(Stats, LeveugleSampleSizeMatchesPaperPresets) {
  // For large populations, 95%/3% -> ~1067 trials; 99%/1% -> ~16587.
  EXPECT_NEAR(static_cast<double>(
                  fault_injection_sample_size(100000000, 0.95, 0.03)),
              1067.0, 2.0);
  EXPECT_NEAR(static_cast<double>(
                  fault_injection_sample_size(100000000, 0.99, 0.01)),
              16587.0, 30.0);
}

TEST(Stats, SampleSizeNeverExceedsPopulation) {
  EXPECT_EQ(fault_injection_sample_size(10, 0.95, 0.03), 10u);
  EXPECT_EQ(fault_injection_sample_size(0, 0.95, 0.03), 0u);
  EXPECT_EQ(fault_injection_sample_size(1, 0.95, 0.03), 1u);
}

class SampleSizeMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SampleSizeMonotone, GrowsWithPopulation) {
  const auto n = GetParam();
  EXPECT_LE(fault_injection_sample_size(n, 0.95, 0.03),
            fault_injection_sample_size(n * 2, 0.95, 0.03));
  EXPECT_LE(fault_injection_sample_size(n, 0.95, 0.03), n);
}

INSTANTIATE_TEST_SUITE_P(Populations, SampleSizeMonotone,
                         ::testing::Values(1, 10, 100, 1000, 10000, 1000000));

// --- thread pool ------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitRuns) {
  ThreadPool pool(2);
  std::atomic<int> x{0};
  auto f = pool.submit([&] { x = 42; });
  f.get();
  EXPECT_EQ(x.load(), 42);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

// A worker exception propagates to the caller, and parallel_for returns only
// after EVERY chunk finished — pinning the old use-after-scope where the
// caller's stack frame (holding `next`/fn) was torn down while a worker was
// still draining, and the worker's exception was silently dropped.
TEST(ThreadPool, ParallelForJoinsAllChunksBeforeThrowing) {
  ThreadPool pool(4);
  std::atomic<int> entered{0};
  std::atomic<int> exited{0};
  auto run = [&] {
    pool.parallel_for(400, [&](std::size_t i) {
      entered.fetch_add(1);
      if (i == 13) {
        exited.fetch_add(1);
        throw std::runtime_error("trial failure");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      exited.fetch_add(1);
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  // No chunk is still running once parallel_for returned.
  EXPECT_EQ(entered.load(), exited.load());
  // The pool survives and runs clean work afterwards.
  std::atomic<int> after{0};
  pool.parallel_for(100, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100);
}

// --- cli -----------------------------------------------------------------------------

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--trials=50", "--full", "pos1",
                        "--name=cg"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("trials", 0), 50);
  EXPECT_TRUE(cli.get_bool("full", false));
  EXPECT_EQ(cli.get("name"), "cg");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_FALSE(cli.has("absent"));
  EXPECT_EQ(cli.get_int("absent", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("absent", 0.5), 0.5);
  EXPECT_FALSE(cli.get_bool("off", true) == false);
}

// --- table ----------------------------------------------------------------------------

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.millis(), 0.0);
}

}  // namespace
}  // namespace ft::util
