// Columnar-substrate equivalence coverage.
//
// Three pins, each against the array-of-structs reference:
//  * ColumnTrace/TraceView vs the legacy observer-collected Trace —
//    record-by-record bit-identical for all ten workloads, clean, faulted
//    and trapping (the direct-emit hot loop must roll back the partial
//    record of an instruction that traps mid-flight);
//  * the CSR LocationEvents vs the legacy map-of-vectors builder —
//    query-by-query identical over every touched location;
//  * diff_run_columnar vs diff_run — identical faulty streams, clean
//    columns, differs bits, and downstream ACL series / pattern counts.
#include <gtest/gtest.h>

#include <sstream>

#include "acl/diff.h"
#include "acl/table.h"
#include "apps/app.h"
#include "core/analysis.h"
#include "patterns/detect.h"
#include "trace/collector.h"
#include "trace/column.h"
#include "trace/events.h"
#include "trace/segment.h"
#include "vm/decode.h"
#include "vm/interp.h"

namespace ft {
namespace {

bool same_record(const vm::DynInstr& a, const vm::DynInstr& b) {
  return a.index == b.index && a.func == b.func && a.block == b.block &&
         a.instr == b.instr && a.op == b.op && a.pred == b.pred &&
         a.type == b.type && a.nops == b.nops && a.line == b.line &&
         a.aux == b.aux && a.result_loc == b.result_loc &&
         a.result_bits == b.result_bits && a.op_loc == b.op_loc &&
         a.op_bits == b.op_bits && a.op_type == b.op_type &&
         a.mem_addr == b.mem_addr && a.mem_size == b.mem_size &&
         a.branch_taken == b.branch_taken;
}

std::string describe(const vm::DynInstr& d) {
  std::ostringstream os;
  os << "index=" << d.index << " op=" << ir::opcode_name(d.op)
     << " func=" << d.func << " block=" << d.block << " instr=" << d.instr
     << " result_bits=" << d.result_bits << " result_loc=" << d.result_loc
     << " op_loc=[" << d.op_loc[0] << "," << d.op_loc[1] << "," << d.op_loc[2]
     << "]";
  return os.str();
}

/// Run the app once through the observer path (legacy Trace) and once
/// through the direct-emit columnar path; require identical run results and
/// a bit-identical record stream.
void expect_traces_identical(const apps::AppSpec& app,
                             const std::shared_ptr<const vm::DecodedProgram>&
                                 prog,
                             const vm::VmOptions& base) {
  trace::TraceCollector collector;
  vm::VmOptions legacy_opts = base;
  legacy_opts.program = prog.get();
  legacy_opts.observer = &collector;
  const auto legacy_run = vm::Vm::run(app.module, legacy_opts);

  trace::ColumnTrace columnar(prog);
  vm::VmOptions col_opts = base;
  col_opts.program = prog.get();
  col_opts.column_sink = &columnar;
  const auto col_run = vm::Vm::run(app.module, col_opts);

  EXPECT_EQ(legacy_run.trap, col_run.trap);
  EXPECT_EQ(legacy_run.instructions, col_run.instructions);
  EXPECT_EQ(legacy_run.fault_fired, col_run.fault_fired);
  EXPECT_TRUE(legacy_run.outputs == col_run.outputs);

  const auto& records = collector.trace().records;
  ASSERT_EQ(records.size(), columnar.size());
  std::uint64_t mismatches = 0;
  std::size_t i = 0;
  for (const vm::DynInstr& r : columnar.view()) {
    if (!same_record(records[i], r) && mismatches++ < 5) {
      ADD_FAILURE() << "record mismatch at " << i
                    << ":\n  legacy  : " << describe(records[i])
                    << "\n  columnar: " << describe(r);
    }
    ++i;
  }
  EXPECT_EQ(mismatches, 0u);

  // The point of the substrate: records must be materially smaller.
  if (!columnar.empty()) {
    EXPECT_LT(columnar.bytes_per_record(),
              static_cast<double>(sizeof(vm::DynInstr)) / 3.0);
  }
}

class ColumnTraceEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(ColumnTraceEquivalence, CleanFaultedAndTrappingRuns) {
  const auto app = apps::build_app(GetParam());
  const auto prog = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(app.module));

  // Clean.
  expect_traces_identical(app, prog, app.base);

  // Mid-run register-commit flip (exercises the Load pre-flip escape when
  // the flip lands on a load).
  vm::VmOptions faulted = app.base;
  faulted.fault = vm::FaultPlan::result_bit(/*dyn_index=*/40000, /*bit=*/40);
  expect_traces_identical(app, prog, faulted);

  // High-bit flip that often traps (OutOfBounds / hang): the columnar
  // stream must end exactly where the observer stream ends.
  vm::VmOptions crashy = app.base;
  crashy.fault = vm::FaultPlan::result_bit(/*dyn_index=*/5000, /*bit=*/62);
  crashy.max_instructions = 400000;
  expect_traces_identical(app, prog, crashy);
}

INSTANTIATE_TEST_SUITE_P(AllApps, ColumnTraceEquivalence,
                         ::testing::ValuesIn(apps::all_app_names()),
                         [](const auto& info) { return info.param; });

// --- TraceView slicing ---------------------------------------------------------

TEST(TraceView, SlicesMatchLegacySlices) {
  const auto app = apps::build_cg();
  const auto prog = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(app.module));

  trace::TraceCollector collector;
  vm::VmOptions lopts = app.base;
  lopts.program = prog.get();
  lopts.observer = &collector;
  (void)vm::Vm::run(app.module, lopts);

  trace::ColumnTrace columnar(prog);
  vm::VmOptions copts = app.base;
  copts.program = prog.get();
  copts.column_sink = &columnar;
  (void)vm::Vm::run(app.module, copts);

  const auto instances = trace::segment_regions(columnar);
  ASSERT_EQ(instances, trace::segment_regions(collector.trace().span()));
  ASSERT_FALSE(instances.empty());
  for (const auto& inst : instances) {
    const auto legacy =
        collector.trace().slice(inst.body_begin(), inst.body_end());
    const auto view = columnar.slice(inst.body_begin(), inst.body_end());
    ASSERT_EQ(legacy.size(), view.size());
    std::size_t i = 0;
    for (const vm::DynInstr& r : view) {
      ASSERT_TRUE(same_record(legacy[i], r)) << "slice record " << i;
      ++i;
    }
  }
}

// --- CSR LocationEvents vs the legacy map builder ------------------------------

TEST(LocationEventsCsr, QueryByQueryMatchesLegacyMap) {
  const auto app = apps::build_lulesh();
  const auto prog = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(app.module));
  trace::ColumnTrace columnar(prog);
  vm::VmOptions opts = app.base;
  opts.program = prog.get();
  opts.column_sink = &columnar;
  (void)vm::Vm::run(app.module, opts);

  // Build the CSR index from the columnar view and the reference from the
  // same (materialized) records.
  const auto csr = trace::LocationEvents::build(columnar.view());
  std::vector<vm::DynInstr> records;
  records.reserve(columnar.size());
  for (const vm::DynInstr& r : columnar.view()) records.push_back(r);
  const auto legacy = trace::LegacyLocationEvents::build(records);

  ASSERT_EQ(csr.num_locations(), legacy.num_locations());

  // Every touched location, probed at its event indices and around them.
  std::size_t probes = 0;
  for (const auto& r : records) {
    vm::Location locs[4] = {r.result_loc, r.op_loc[0], r.op_loc[1],
                            r.op_loc[2]};
    for (const auto loc : locs) {
      if (loc == vm::kNoLoc) continue;
      for (const std::uint64_t at :
           {r.index == 0 ? 0 : r.index - 1, r.index, r.index + 1}) {
        ASSERT_EQ(csr.next_read_after(loc, at),
                  legacy.next_read_after(loc, at))
            << "loc " << vm::loc_to_string(loc) << " at " << at;
        ASSERT_EQ(csr.next_write_after(loc, at),
                  legacy.next_write_after(loc, at));
        ASSERT_EQ(csr.touched_after(loc, at), legacy.touched_after(loc, at));
        ASSERT_EQ(csr.read_before_overwrite_after(loc, at),
                  legacy.read_before_overwrite_after(loc, at));
        probes++;
      }
    }
    if (probes > 400000) break;  // plenty of coverage, bounded runtime
  }
  EXPECT_GT(probes, 1000u);

  // Untouched locations answer "nothing" in both.
  const vm::Location ghost = vm::reg_loc(0xABCDEF, 7);
  EXPECT_EQ(csr.next_read_after(ghost, 0), trace::LocationEvents::kNoIndex);
  EXPECT_FALSE(csr.touched_after(ghost, 0));
}

// --- columnar diff vs legacy diff ----------------------------------------------

class ColumnDiffEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(ColumnDiffEquivalence, DiffAclAndPatternsMatch) {
  const auto app = apps::build_app(GetParam());
  const auto prog = std::make_shared<const vm::DecodedProgram>(
      vm::DecodedProgram::decode(app.module));

  acl::DiffOptions opts;
  opts.base = app.base;
  opts.fault = vm::FaultPlan::result_bit(20000, 33);
  opts.max_records = 150000;

  const auto legacy = acl::diff_run(*prog, opts);
  const auto columnar = acl::diff_run_columnar(prog, opts);

  EXPECT_EQ(legacy.divergence_index, columnar.divergence_index);
  EXPECT_EQ(legacy.truncated, columnar.truncated);
  EXPECT_EQ(legacy.clean_result.trap, columnar.clean_result.trap);
  EXPECT_EQ(legacy.faulty_result.trap, columnar.faulty_result.trap);
  EXPECT_TRUE(legacy.clean_result.outputs == columnar.clean_result.outputs);
  EXPECT_TRUE(legacy.faulty_result.outputs == columnar.faulty_result.outputs);
  ASSERT_EQ(legacy.usable_records(), columnar.usable_records());
  EXPECT_TRUE(legacy.clean_bits == columnar.clean_bits);
  EXPECT_TRUE(legacy.clean_op_bits == columnar.clean_op_bits);
  EXPECT_TRUE(legacy.differs == columnar.differs);
  ASSERT_EQ(legacy.faulty.records.size(), columnar.faulty.size());
  std::size_t i = 0;
  for (const vm::DynInstr& r : columnar.faulty.view()) {
    ASSERT_TRUE(same_record(legacy.faulty.records[i], r)) << "record " << i;
    ++i;
  }

  // Downstream: ACL series/events and pattern counts must be identical on
  // both substrates.
  const auto legacy_events = trace::LocationEvents::build(
      std::span<const vm::DynInstr>(legacy.faulty.records.data(),
                                    legacy.usable_records()));
  const auto col_events = trace::LocationEvents::build(columnar.records());
  const auto legacy_acl = acl::build_acl(legacy, legacy_events);
  const auto col_acl = acl::build_acl(columnar, col_events);
  EXPECT_TRUE(legacy_acl.count == col_acl.count);
  EXPECT_EQ(legacy_acl.max_count, col_acl.max_count);
  EXPECT_EQ(legacy_acl.first_corruption_index, col_acl.first_corruption_index);
  ASSERT_EQ(legacy_acl.events.size(), col_acl.events.size());
  for (std::size_t e = 0; e < legacy_acl.events.size(); ++e) {
    const auto& a = legacy_acl.events[e];
    const auto& b = col_acl.events[e];
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.loc, b.loc);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.faulty_bits, b.faulty_bits);
    EXPECT_EQ(a.clean_bits, b.clean_bits);
  }

  const auto legacy_patterns =
      patterns::detect_patterns(legacy, legacy_events);
  const auto col_patterns = patterns::detect_patterns(columnar, col_events);
  EXPECT_TRUE(legacy_patterns.counts == col_patterns.counts);
}

INSTANTIATE_TEST_SUITE_P(AllApps, ColumnDiffEquivalence,
                         ::testing::ValuesIn(apps::all_app_names()),
                         [](const auto& info) { return info.param; });

// --- session integration -------------------------------------------------------

TEST(SessionColumnar, GoldenArtifactsAgreeWithObserverPipeline) {
  core::AnalysisSession session(apps::build_cg());
  const auto& spec = session.app();
  const auto tr = session.golden_trace();
  EXPECT_EQ(tr->size(), session.golden()->instructions);

  // The session's columnar artifacts equal a from-scratch observer-path
  // enumeration (enumerate_sites runs the legacy engine + legacy trace).
  for (const auto& rd : spec.analysis_regions) {
    const auto columnar = session.region_sites(rd.id, 0);
    const auto reference =
        fault::enumerate_sites(spec.module, rd.id, 0, spec.base);
    ASSERT_EQ(columnar->region_found, reference.region_found) << rd.name;
    ASSERT_EQ(columnar->sites.internal.size(),
              reference.sites.internal.size());
    EXPECT_EQ(columnar->sites.internal_bits(),
              reference.sites.internal_bits());
    ASSERT_EQ(columnar->sites.input.size(), reference.sites.input.size());
    for (std::size_t i = 0; i < columnar->sites.input.size(); ++i) {
      EXPECT_EQ(columnar->sites.input[i].address,
                reference.sites.input[i].address);
    }
  }
}

TEST(SessionColumnar, PatternsForRegionInputFaultSeedsColumnarScan) {
  core::AnalysisSession session(apps::build_lulesh());
  const auto& app = session.app();
  const auto xd = app.module.global(*app.module.find_global("xd"));
  const auto plan = vm::FaultPlan::region_input_bit(app.main_region, 2,
                                                    xd.addr + 13 * 8, 8, 45);
  const auto report = session.patterns_for(plan);
  // The seeded ACL sweep found the corruption (first corruption at or
  // before the first differing write).
  EXPECT_NE(report.acl.first_corruption_index, acl::kNoIndex);
  EXPECT_FALSE(report.acl.events.empty());
}

}  // namespace
}  // namespace ft
