// Pattern detectors (§VI): one crafted micro-program per pattern designed
// to exhibit exactly that resilience mechanism, plus the fault-free rate
// counters of Table IV.
#include <gtest/gtest.h>

#include "acl/diff.h"
#include "hl/builder.h"
#include "patterns/detect.h"
#include "patterns/rates.h"
#include "trace/collector.h"
#include "trace/events.h"
#include "util/bits.h"
#include "vm/interp.h"

namespace ft {
namespace {

using patterns::PatternKind;

/// Find the dynamic index of the nth record matching pred in a fault-free
/// traced run.
template <typename Pred>
std::uint64_t find_index(const ir::Module& m, const Pred& pred,
                         unsigned nth = 0) {
  trace::TraceCollector c;
  vm::VmOptions opts;
  opts.observer = &c;
  (void)vm::Vm::run(m, opts);
  unsigned seen = 0;
  for (const auto& r : c.trace().records) {
    if (pred(r)) {
      if (seen == nth) return r.index;
      seen++;
    }
  }
  ADD_FAILURE() << "no matching record";
  return 0;
}

patterns::PatternReport detect(const ir::Module& m, const vm::FaultPlan& plan,
                               patterns::DetectOptions opts = {}) {
  acl::DiffOptions dopts;
  dopts.fault = plan;
  const auto diff = acl::diff_run(m, dopts);
  const auto events = trace::LocationEvents::build(
      std::span<const vm::DynInstr>(diff.faulty.records.data(),
                                    diff.usable_records()));
  return patterns::detect_patterns(diff, events, opts);
}

// --- Pattern 6: Data Overwriting --------------------------------------------

TEST(Detect, DataOverwriting) {
  hl::ProgramBuilder pb("t");
  auto a = pb.global_init_f64("a", {1.0});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto v = f.ld(a, 0);    // corrupt this load's result
    f.st(a, 0, v);          // corrupted value lands in memory
    f.st(a, 0, f.c_f64(5.0));  // clean value overwrites it
    f.emit(f.ld(a, 0));
    f.ret();
  }
  auto mod = pb.finish();
  const auto idx = find_index(
      mod, [](const vm::DynInstr& r) { return r.op == ir::Opcode::Load; });
  const auto rep = detect(mod, vm::FaultPlan::result_bit(idx, 48));
  EXPECT_TRUE(rep.found(PatternKind::DataOverwriting));
  EXPECT_FALSE(rep.found(PatternKind::Shifting));
  EXPECT_FALSE(rep.found(PatternKind::Truncation));
}

// --- Pattern 1: Dead Corrupted Locations --------------------------------------

TEST(Detect, DeadCorruptedLocations) {
  hl::ProgramBuilder pb("t");
  auto tmp = pb.global_f64("tmp", 4);
  auto out = pb.global_f64("out", 1);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    // Aggregate temporaries into one output (Fig. 8 shape), then never
    // touch the temporaries again.
    f.for_("i", 0, 4, [&](hl::Value i) {
      f.st(tmp, i, f.sitofp(i) * 1.5);
    });
    auto s = f.var_f64("s", 0.0);
    f.for_("i", 0, 4, [&](hl::Value i) { s.set(s.get() + f.ld(tmp, i)); });
    f.st(out, 0, s.get());
    f.emit(f.ld(out, 0));
    f.ret();
  }
  auto mod = pb.finish();
  // Corrupt the store into tmp[2].
  const auto idx = find_index(
      mod,
      [](const vm::DynInstr& r) {
        return r.op == ir::Opcode::Store && r.type == ir::Type::Void &&
               r.op_type[0] == ir::Type::F64;
      },
      2);
  const auto rep = detect(mod, vm::FaultPlan::result_bit(idx, 30));
  // tmp[2] is read once into the aggregation and then dies.
  EXPECT_TRUE(rep.found(PatternKind::DeadCorruptedLocations));
}

// --- Pattern 3: Conditional Statements ------------------------------------------

TEST(Detect, ConditionalStatementMasksFault) {
  hl::ProgramBuilder pb("t");
  auto a = pb.global_init_f64("a", {10.0, 1.0});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto x = f.ld(a, 0);  // corrupt low mantissa: still > a[1]
    auto cond = x.gt(f.ld(a, 1));
    f.if_else(cond, [&] { f.emit(f.c_i64(1)); }, [&] { f.emit(f.c_i64(0)); });
    f.ret();
  }
  auto mod = pb.finish();
  const auto idx = find_index(
      mod, [](const vm::DynInstr& r) { return r.op == ir::Opcode::Load; });
  const auto rep = detect(mod, vm::FaultPlan::result_bit(idx, 2));
  EXPECT_TRUE(rep.found(PatternKind::ConditionalStatement));
  // And the program output is identical to the clean run.
}

TEST(Detect, FlippedComparisonIsNotMasking) {
  hl::ProgramBuilder pb("t");
  auto a = pb.global_init_f64("a", {10.0, 1.0});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto cond = f.ld(a, 0).gt(f.ld(a, 1));
    f.emit(f.select(cond, f.c_i64(1), f.c_i64(0)));
    f.ret();
  }
  auto mod = pb.finish();
  // Corrupt the exponent so 10.0 becomes tiny and the comparison flips.
  const auto idx = find_index(
      mod, [](const vm::DynInstr& r) { return r.op == ir::Opcode::Load; });
  const auto rep = detect(mod, vm::FaultPlan::result_bit(idx, 62));
  EXPECT_FALSE(rep.found(PatternKind::ConditionalStatement));
}

// --- Pattern 4: Shifting -----------------------------------------------------------

TEST(Detect, ShiftMasksLowBits) {
  hl::ProgramBuilder pb("t");
  auto keys = pb.global_init_i64("keys", {0x3F5});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto k = f.ld(keys, 0);       // corrupt bit 2
    f.emit(f.lshr(k, 6));         // Fig. 11: bucket index drops low bits
    f.ret();
  }
  auto mod = pb.finish();
  const auto idx = find_index(
      mod, [](const vm::DynInstr& r) { return r.op == ir::Opcode::Load; });
  const auto rep = detect(mod, vm::FaultPlan::result_bit(idx, 2));
  EXPECT_TRUE(rep.found(PatternKind::Shifting));
}

TEST(Detect, ShiftDoesNotMaskHighBits) {
  hl::ProgramBuilder pb("t");
  auto keys = pb.global_init_i64("keys", {0x3F5});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.emit(f.lshr(f.ld(keys, 0), 6));
    f.ret();
  }
  auto mod = pb.finish();
  const auto idx = find_index(
      mod, [](const vm::DynInstr& r) { return r.op == ir::Opcode::Load; });
  const auto rep = detect(mod, vm::FaultPlan::result_bit(idx, 20));
  EXPECT_FALSE(rep.found(PatternKind::Shifting));
}

// --- Pattern 5: Truncation -----------------------------------------------------------

TEST(Detect, NarrowingCastMasksMantissa) {
  hl::ProgramBuilder pb("t");
  auto a = pb.global_init_f64("a", {123.456});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.emit(f.fptosi(f.ld(a, 0)));  // (int) drops the fraction
    f.ret();
  }
  auto mod = pb.finish();
  const auto idx = find_index(
      mod, [](const vm::DynInstr& r) { return r.op == ir::Opcode::Load; });
  // Bit 44 perturbs well below the integer part of 123.456.
  const auto rep = detect(mod, vm::FaultPlan::result_bit(idx, 30));
  EXPECT_TRUE(rep.found(PatternKind::Truncation));
}

TEST(Detect, EmitTruncMasksLowMantissa) {
  hl::ProgramBuilder pb("t");
  auto a = pb.global_init_f64("a", {1.875});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.emit_trunc(f.ld(a, 0), 6);  // "%12.6e" (Pattern 5 in LULESH)
    f.ret();
  }
  auto mod = pb.finish();
  const auto idx = find_index(
      mod, [](const vm::DynInstr& r) { return r.op == ir::Opcode::Load; });
  const auto rep = detect(mod, vm::FaultPlan::result_bit(idx, 3));
  EXPECT_TRUE(rep.found(PatternKind::Truncation));
}

// --- Pattern 2: Repeated Additions ------------------------------------------------

TEST(Detect, RepeatedAdditionsAmortizeError) {
  hl::ProgramBuilder pb("t");
  auto u = pb.global_init_f64("u", {1.0});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    // u[0] grows by clean increments: the relative error of an early
    // corruption shrinks with every accumulation (Fig. 9 dynamics).
    f.for_("i", 0, 12, [&](hl::Value) {
      f.st(u, 0, f.ld(u, 0) + 10.0);
    });
    f.emit(f.ld(u, 0));
    f.ret();
  }
  auto mod = pb.finish();
  // Target the f64 load of u[0], not the loop counter's i64 load.
  const auto idx = find_index(mod, [](const vm::DynInstr& r) {
    return r.op == ir::Opcode::Load && r.type == ir::Type::F64;
  });
  const auto rep = detect(mod, vm::FaultPlan::result_bit(idx, 40));
  EXPECT_TRUE(rep.found(PatternKind::RepeatedAdditions));
  // Detail carries the shrinking error magnitude.
  double last = 1e300;
  bool decreasing = true;
  for (const auto& inst : rep.instances) {
    if (inst.kind != PatternKind::RepeatedAdditions) continue;
    if (inst.detail > last) decreasing = false;
    last = inst.detail;
  }
  EXPECT_TRUE(decreasing);
}

TEST(Detect, NonAccumulatingStoreIsNotRepeatedAddition) {
  hl::ProgramBuilder pb("t");
  auto u = pb.global_init_f64("u", {1.0});
  auto w = pb.global_f64("w", 1);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.for_("i", 0, 12, [&](hl::Value i) {
      f.st(w, 0, f.ld(u, 0) + f.sitofp(i));  // different destination
    });
    f.emit(f.ld(w, 0));
    f.ret();
  }
  auto mod = pb.finish();
  const auto idx = find_index(
      mod, [](const vm::DynInstr& r) { return r.op == ir::Opcode::Load; });
  const auto rep = detect(mod, vm::FaultPlan::result_bit(idx, 40));
  EXPECT_FALSE(rep.found(PatternKind::RepeatedAdditions));
}

// --- rates (Table IV features) -----------------------------------------------------

TEST(Rates, CountsMatchHandComputedMix) {
  hl::ProgramBuilder pb("t");
  auto u = pb.global_init_f64("u", {1.0});
  auto k = pb.global_init_i64("k", {0xFF});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.emit(f.lshr(f.ld(k, 0), 4));            // one shift
    f.emit(f.fptosi(f.ld(u, 0)));             // one truncation
    f.st(u, 0, f.ld(u, 0) + 1.0);             // one accumulation store
    f.emit(f.ld(u, 0));
    f.ret();
  }
  auto mod = pb.finish();
  trace::TraceCollector c;
  vm::VmOptions opts;
  opts.observer = &c;
  (void)vm::Vm::run(mod, opts);
  const auto events = trace::LocationEvents::build(c.trace().span());
  const auto rates = patterns::measure_rates(c.trace().span(), events);

  const auto total = static_cast<double>(rates.total_instructions);
  EXPECT_NEAR(rates.of(PatternKind::Shifting), 1.0 / total, 1e-12);
  EXPECT_NEAR(rates.of(PatternKind::Truncation), 1.0 / total, 1e-12);
  EXPECT_NEAR(rates.of(PatternKind::RepeatedAdditions), 1.0 / total, 1e-12);
  // Straight-line SSA code never overwrites a location.
  EXPECT_EQ(rates.of(PatternKind::DataOverwriting), 0.0);
  EXPECT_GE(rates.of(PatternKind::DeadCorruptedLocations), 0.0);
}

TEST(Rates, LoopHeavyProgramHasHighConditionRate) {
  hl::ProgramBuilder pb("t");
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    auto s = f.var_i64("s", 0);
    f.for_("i", 0, 50, [&](hl::Value i) {
      f.if_(i.gt(25), [&] { s.set(s.get() + 1); });
    });
    f.emit(s.get());
    f.ret();
  }
  auto mod = pb.finish();
  trace::TraceCollector c;
  vm::VmOptions opts;
  opts.observer = &c;
  (void)vm::Vm::run(mod, opts);
  const auto events = trace::LocationEvents::build(c.trace().span());
  const auto rates = patterns::measure_rates(c.trace().span(), events);
  // Loop conditions + body conditions dominate.
  EXPECT_GT(rates.of(PatternKind::ConditionalStatement), 0.15);
  EXPECT_EQ(rates.of(PatternKind::Shifting), 0.0);
  // The loop-counter slot is rewritten every iteration.
  EXPECT_GT(rates.of(PatternKind::DataOverwriting), 0.0);
}

TEST(Rates, EmptyTraceIsSafe) {
  const auto events =
      trace::LocationEvents::build(std::span<const vm::DynInstr>{});
  const auto rates =
      patterns::measure_rates(std::span<const vm::DynInstr>{}, events);
  EXPECT_EQ(rates.total_instructions, 0u);
}

TEST(PatternNames, Stable) {
  EXPECT_EQ(patterns::pattern_name(PatternKind::DeadCorruptedLocations),
            "DCL");
  EXPECT_EQ(patterns::pattern_name(PatternKind::RepeatedAdditions), "RA");
  EXPECT_EQ(patterns::pattern_name(PatternKind::DataOverwriting), "DO");
  EXPECT_EQ(patterns::kAllPatterns.size(), patterns::kNumPatterns);
}

}  // namespace
}  // namespace ft
