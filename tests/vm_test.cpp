// VM semantics: arithmetic vs host arithmetic, traps, determinism, fault
// arming, observer records, budgets.
#include <gtest/gtest.h>

#include <cmath>

#include "hl/builder.h"
#include "trace/collector.h"
#include "util/bits.h"
#include "vm/interp.h"

namespace ft {
namespace {

using hl::FunctionBuilder;
using hl::ProgramBuilder;
using hl::Value;

ir::Module one_func(const std::function<void(FunctionBuilder&)>& body) {
  ProgramBuilder pb("t");
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    body(f);
    f.ret();
  }
  return pb.finish();
}

// --- parameterized arithmetic sweep vs host ------------------------------------

struct IntCase {
  std::int64_t a, b;
};

class IntArithmetic : public ::testing::TestWithParam<IntCase> {};

TEST_P(IntArithmetic, MatchesHost) {
  const auto [a, b] = GetParam();
  auto mod = one_func([&](FunctionBuilder& f) {
    auto x = f.var_i64("x", a);
    auto y = f.var_i64("y", b);
    f.emit(x.get() + y.get());
    f.emit(x.get() - y.get());
    f.emit(x.get() * y.get());
    f.emit(x.get() & y.get());
    f.emit(x.get() | y.get());
    f.emit(x.get() ^ y.get());
  });
  const auto r = vm::Vm::run(mod);
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.outputs[0].as_i64(),
            static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                      static_cast<std::uint64_t>(b)));
  EXPECT_EQ(r.outputs[1].as_i64(),
            static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                      static_cast<std::uint64_t>(b)));
  EXPECT_EQ(r.outputs[2].as_i64(),
            static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                      static_cast<std::uint64_t>(b)));
  EXPECT_EQ(r.outputs[3].as_i64(), a & b);
  EXPECT_EQ(r.outputs[4].as_i64(), a | b);
  EXPECT_EQ(r.outputs[5].as_i64(), a ^ b);
}

INSTANTIATE_TEST_SUITE_P(
    Values, IntArithmetic,
    ::testing::Values(IntCase{0, 0}, IntCase{1, 2}, IntCase{-5, 3},
                      IntCase{1ll << 62, 1ll << 62},
                      IntCase{-1, std::numeric_limits<std::int64_t>::max()},
                      IntCase{123456789, -987654321}));

struct FpCase {
  double a, b;
};

class FpArithmetic : public ::testing::TestWithParam<FpCase> {};

TEST_P(FpArithmetic, MatchesHost) {
  const auto [a, b] = GetParam();
  auto mod = one_func([&](FunctionBuilder& f) {
    auto x = f.var_f64("x", a);
    auto y = f.var_f64("y", b);
    f.emit(x.get() + y.get());
    f.emit(x.get() - y.get());
    f.emit(x.get() * y.get());
    f.emit(x.get() / y.get());
  });
  const auto r = vm::Vm::run(mod);
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(util::f64_to_bits(r.outputs[0].as_f64()),
            util::f64_to_bits(a + b));
  EXPECT_EQ(util::f64_to_bits(r.outputs[1].as_f64()),
            util::f64_to_bits(a - b));
  EXPECT_EQ(util::f64_to_bits(r.outputs[2].as_f64()),
            util::f64_to_bits(a * b));
  EXPECT_EQ(util::f64_to_bits(r.outputs[3].as_f64()),
            util::f64_to_bits(a / b));
}

INSTANTIATE_TEST_SUITE_P(
    Values, FpArithmetic,
    ::testing::Values(FpCase{1.5, 2.25}, FpCase{-3.5, 0.125},
                      FpCase{1e300, 1e-300}, FpCase{0.1, 0.2},
                      FpCase{-0.0, 5.0}));

// --- traps ------------------------------------------------------------------------

TEST(VmTraps, DivByZero) {
  auto mod = one_func([](FunctionBuilder& f) {
    auto x = f.var_i64("x", 1);
    auto y = f.var_i64("y", 0);
    f.emit(x.get() / y.get());
  });
  const auto r = vm::Vm::run(mod);
  EXPECT_EQ(r.trap, vm::TrapKind::DivByZero);
}

TEST(VmTraps, IntMinDivMinusOne) {
  auto mod = one_func([](FunctionBuilder& f) {
    auto x = f.var_i64("x", std::numeric_limits<std::int64_t>::min());
    auto y = f.var_i64("y", -1);
    f.emit(x.get() / y.get());
  });
  EXPECT_EQ(vm::Vm::run(mod).trap, vm::TrapKind::IntOverflowDiv);
}

TEST(VmTraps, ShiftTooWide) {
  auto mod = one_func([](FunctionBuilder& f) {
    auto x = f.var_i64("x", 1);
    auto amt = f.var_i64("amt", 64);
    f.emit(x.get() << amt.get());
  });
  EXPECT_EQ(vm::Vm::run(mod).trap, vm::TrapKind::BadShift);
}

TEST(VmTraps, OutOfBoundsLoad) {
  ProgramBuilder pb("t");
  auto arr = pb.global_f64("arr", 4);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.emit(f.ld(arr, 1000000));
    f.ret();
  }
  auto mod = pb.finish();
  EXPECT_EQ(vm::Vm::run(mod).trap, vm::TrapKind::OutOfBounds);
}

TEST(VmTraps, NullPageIsUnmapped) {
  auto mod = one_func([](FunctionBuilder& f) {
    auto p = f.gep(f.c_i64(0), f.c_i64(0), 8);  // address 0
    f.emit(f.ld_raw(p, ir::Type::F64));
  });
  // gep on an i64 "pointer" is type-sloppy but executes; address 0 traps.
  EXPECT_EQ(vm::Vm::run(mod).trap, vm::TrapKind::OutOfBounds);
}

TEST(VmTraps, FpToSiDomain) {
  auto mod = one_func([](FunctionBuilder& f) {
    auto x = f.var_f64("x", 0.0);
    auto y = f.var_f64("y", 0.0);
    f.emit(f.fptosi(x.get() / y.get()));  // NaN
  });
  EXPECT_EQ(vm::Vm::run(mod).trap, vm::TrapKind::FpDomain);
}

TEST(VmTraps, HangBudget) {
  auto mod = one_func([](FunctionBuilder& f) {
    auto x = f.var_i64("x", 0);
    f.while_([&] { return x.get().ge(0); }, [&] { x.set(x.get()); });
  });
  vm::VmOptions opts;
  opts.max_instructions = 10000;
  const auto r = vm::Vm::run(mod, opts);
  EXPECT_EQ(r.trap, vm::TrapKind::Hang);
  EXPECT_EQ(r.instructions, 10000u);
}

TEST(VmTraps, RunawayRecursion) {
  ProgramBuilder pb("t");
  const auto f_rec = pb.declare_function("rec", ir::Type::Void, {});
  const auto f_main = pb.declare_function("main");
  {
    auto f = pb.define(f_rec);
    f.call(f_rec, {});
    f.ret();
  }
  {
    auto f = pb.define(f_main);
    f.call(f_rec, {});
    f.ret();
  }
  auto mod = pb.finish();
  EXPECT_EQ(vm::Vm::run(mod).trap, vm::TrapKind::CallDepth);
}

// --- determinism --------------------------------------------------------------------

TEST(VmDeterminism, SameSeedSameOutputs) {
  auto mod = one_func([](FunctionBuilder& f) {
    auto sum = f.var_f64("sum", 0.0);
    f.for_("i", 0, 100, [&](Value) { sum.set(sum.get() + f.rand_()); });
    f.emit(sum.get());
  });
  const auto a = vm::Vm::run(mod);
  const auto b = vm::Vm::run(mod);
  ASSERT_TRUE(a.completed());
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.instructions, b.instructions);
}

TEST(VmDeterminism, DifferentSeedDiffers) {
  auto mod = one_func([](FunctionBuilder& f) { f.emit(f.rand_()); });
  vm::VmOptions o1, o2;
  o2.rand_seed = 271828183.0;
  const auto a = vm::Vm::run(mod, o1);
  const auto b = vm::Vm::run(mod, o2);
  EXPECT_NE(a.outputs[0].bits, b.outputs[0].bits);
}

TEST(VmDeterminism, TraceIsIdenticalAcrossRuns) {
  auto mod = one_func([](FunctionBuilder& f) {
    auto s = f.var_f64("s", 0.0);
    f.for_("i", 0, 50, [&](Value i) {
      s.set(s.get() + f.sitofp(i) * 1.5);
    });
    f.emit(s.get());
  });
  trace::TraceCollector c1, c2;
  vm::VmOptions o1, o2;
  o1.observer = &c1;
  o2.observer = &c2;
  (void)vm::Vm::run(mod, o1);
  (void)vm::Vm::run(mod, o2);
  ASSERT_EQ(c1.trace().size(), c2.trace().size());
  for (std::size_t i = 0; i < c1.trace().size(); ++i) {
    const auto& a = c1.trace().records[i];
    const auto& b = c2.trace().records[i];
    EXPECT_EQ(a.result_bits, b.result_bits);
    EXPECT_EQ(a.result_loc, b.result_loc);
    EXPECT_EQ(a.op, b.op);
  }
}

// --- fault arming ----------------------------------------------------------------------

TEST(VmFault, ResultBitFlipChangesOneValue) {
  auto mod = one_func([](FunctionBuilder& f) {
    auto x = f.var_f64("x", 1.0);
    f.emit(x.get() + 1.0);
  });
  // Find the dynamic index of the FAdd.
  trace::TraceCollector c;
  vm::VmOptions opts;
  opts.observer = &c;
  (void)vm::Vm::run(mod, opts);
  std::uint64_t fadd_index = 0;
  for (const auto& r : c.trace().records) {
    if (r.op == ir::Opcode::FAdd) fadd_index = r.index;
  }
  vm::VmOptions fopts;
  fopts.fault = vm::FaultPlan::result_bit(fadd_index, 52);  // mantissa top
  const auto r = vm::Vm::run(mod, fopts);
  ASSERT_TRUE(r.completed());
  EXPECT_TRUE(r.fault_fired);
  EXPECT_NE(r.outputs[0].as_f64(), 2.0);
  EXPECT_TRUE(util::differs_by_one_bit(util::f64_to_bits(r.outputs[0].as_f64()),
                                       util::f64_to_bits(2.0)));
}

TEST(VmFault, RegionInputFlipFires) {
  ProgramBuilder pb("t");
  auto arr = pb.global_init_f64("arr", {1.0, 2.0});
  const auto rid = pb.declare_region("r", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.region(rid, [&] { f.emit(f.ld(arr, 0)); });
    f.ret();
  }
  auto mod = pb.finish();
  const auto addr = mod.global(*mod.find_global("arr")).addr;

  vm::VmOptions opts;
  opts.fault = vm::FaultPlan::region_input_bit(rid, 0, addr, 8, 52);
  const auto r = vm::Vm::run(mod, opts);
  ASSERT_TRUE(r.completed());
  EXPECT_TRUE(r.fault_fired);
  EXPECT_EQ(util::f64_to_bits(r.outputs[0].as_f64()),
            util::flip_bit(util::f64_to_bits(1.0), 52));
}

TEST(VmFault, WrongInstanceDoesNotFire) {
  ProgramBuilder pb("t");
  auto arr = pb.global_init_f64("arr", {1.0});
  const auto rid = pb.declare_region("r", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.region(rid, [&] { f.emit(f.ld(arr, 0)); });
    f.ret();
  }
  auto mod = pb.finish();
  const auto addr = mod.global(0).addr;
  vm::VmOptions opts;
  opts.fault = vm::FaultPlan::region_input_bit(rid, 5 /*never reached*/, addr,
                                               8, 3);
  const auto r = vm::Vm::run(mod, opts);
  ASSERT_TRUE(r.completed());
  EXPECT_FALSE(r.fault_fired);
  EXPECT_DOUBLE_EQ(r.outputs[0].as_f64(), 1.0);
}

// --- observer records -------------------------------------------------------------------

TEST(VmObserver, RecordsCarryOperandsAndResults) {
  auto mod = one_func([](FunctionBuilder& f) {
    auto x = f.var_i64("x", 6);
    auto y = f.var_i64("y", 7);
    f.emit(x.get() * y.get());
  });
  trace::TraceCollector c;
  vm::VmOptions opts;
  opts.observer = &c;
  (void)vm::Vm::run(mod, opts);
  bool saw_mul = false;
  for (const auto& r : c.trace().records) {
    if (r.op != ir::Opcode::Mul) continue;
    saw_mul = true;
    EXPECT_EQ(static_cast<std::int64_t>(r.op_bits[0]), 6);
    EXPECT_EQ(static_cast<std::int64_t>(r.op_bits[1]), 7);
    EXPECT_EQ(static_cast<std::int64_t>(r.result_bits), 42);
    EXPECT_NE(r.result_loc, vm::kNoLoc);
    EXPECT_TRUE(vm::is_reg_loc(r.result_loc));
  }
  EXPECT_TRUE(saw_mul);
}

TEST(VmObserver, LoadStoreRecordMemoryLocations) {
  ProgramBuilder pb("t");
  auto arr = pb.global_f64("arr", 2);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.st(arr, 0, f.c_f64(3.5));
    f.emit(f.ld(arr, 0));
    f.ret();
  }
  auto mod = pb.finish();
  const auto addr = mod.global(0).addr;
  trace::TraceCollector c;
  vm::VmOptions opts;
  opts.observer = &c;
  (void)vm::Vm::run(mod, opts);
  bool saw_store = false, saw_load = false;
  for (const auto& r : c.trace().records) {
    if (r.op == ir::Opcode::Store && r.mem_addr == addr) {
      saw_store = true;
      EXPECT_EQ(r.result_loc, vm::mem_loc(addr));
      EXPECT_EQ(r.result_bits, util::f64_to_bits(3.5));
    }
    if (r.op == ir::Opcode::Load && r.mem_addr == addr) {
      saw_load = true;
      EXPECT_EQ(r.op_loc[0], vm::mem_loc(addr));
      EXPECT_EQ(r.result_bits, util::f64_to_bits(3.5));
    }
  }
  EXPECT_TRUE(saw_store);
  EXPECT_TRUE(saw_load);
}

TEST(VmObserver, EmitTruncRoundsValue) {
  auto mod = one_func([](FunctionBuilder& f) {
    f.emit_trunc(f.c_f64(1.23456789012345), 6);
  });
  const auto r = vm::Vm::run(mod);
  ASSERT_TRUE(r.completed());
  EXPECT_DOUBLE_EQ(r.outputs[0].as_f64(), 1.234568);
}

TEST(VmObserver, RegionInstanceCounting) {
  ProgramBuilder pb("t");
  const auto rid = pb.declare_region("r", 0, 0);
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.for_("i", 0, 5, [&](Value) { f.region(rid, [&] {}); });
    f.ret();
  }
  auto mod = pb.finish();
  vm::Vm vm(mod);
  while (vm.status() == vm::Vm::Status::Running) vm.step(nullptr);
  EXPECT_EQ(vm.region_instances(rid), 5u);
}

TEST(VmMemoryAccess, HostReadWrite) {
  ProgramBuilder pb("t");
  (void)pb.global_init_f64("arr", {1.0, 2.0});
  const auto fid = pb.declare_function("main");
  {
    auto f = pb.define(fid);
    f.ret();
  }
  auto mod = pb.finish();
  vm::Vm vm(mod);
  const auto addr = mod.global(0).addr;
  EXPECT_EQ(vm.read_word(addr, 8), util::f64_to_bits(1.0));
  vm.write_word(addr, 8, util::f64_to_bits(7.0));
  EXPECT_EQ(vm.read_word(addr, 8), util::f64_to_bits(7.0));
}

}  // namespace
}  // namespace ft
