// Fault machinery: site enumeration, plan sampling, outcome classification,
// campaign determinism and accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "fault/campaign.h"
#include "fault/outcome.h"
#include "fault/sites.h"
#include "hl/builder.h"
#include "util/bits.h"
#include "util/stats.h"
#include "vm/interp.h"

namespace ft {
namespace {

// Program: region computes sum of 8 array elements; output = sum, verified
// with a loose tolerance so low-mantissa flips pass and exponent flips fail.
struct CampaignHarness {
  ir::Module mod{"t"};
  std::uint32_t rid = 0;
  std::vector<vm::OutputValue> golden;
  fault::Verifier verifier;

  static CampaignHarness make() {
    CampaignHarness h;
    hl::ProgramBuilder pb("t");
    auto arr = pb.global_init_f64(
        "arr", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
    const auto rid = pb.declare_region("sum", 0, 0);
    const auto fid = pb.declare_function("main");
    {
      auto f = pb.define(fid);
      auto s = f.var_f64("s", 0.0);
      f.region(rid, [&] {
        f.for_("i", 0, 8, [&](hl::Value i) {
          s.set(s.get() + f.ld(arr, i));
        });
      });
      f.emit(s.get());
      f.ret();
    }
    h.rid = rid;
    h.mod = pb.finish();
    const auto run = vm::Vm::run(h.mod);
    EXPECT_TRUE(run.completed());
    h.golden = run.outputs;
    h.verifier = fault::tolerance_verifier(1e-3);
    return h;
  }
};

TEST(Sites, EnumerationFindsInternalAndInputSites) {
  const auto h = CampaignHarness::make();
  const auto sites = fault::enumerate_sites(h.mod, h.rid, 0, {});
  ASSERT_TRUE(sites.region_found);
  EXPECT_GT(sites.sites.internal.size(), 8u);
  // Inputs include the 8 array cells (plus the accumulator slot).
  EXPECT_GE(sites.sites.input.size(), 8u);
  EXPECT_GT(sites.sites.internal_bits(), 0u);
  EXPECT_EQ(sites.sites.input_bits() % 8, 0u);
  EXPECT_GT(sites.fault_free_instructions, 0u);
}

TEST(Sites, MissingRegionInstanceIsReported) {
  const auto h = CampaignHarness::make();
  const auto sites = fault::enumerate_sites(h.mod, h.rid, 99, {});
  EXPECT_FALSE(sites.region_found);
  EXPECT_TRUE(sites.sites.internal.empty());
}

TEST(Sites, WholeProgramEnumeration) {
  const auto h = CampaignHarness::make();
  const auto sites = fault::enumerate_whole_program_sites(h.mod, {});
  ASSERT_TRUE(sites.region_found);
  const auto region_sites = fault::enumerate_sites(h.mod, h.rid, 0, {});
  EXPECT_GT(sites.sites.internal.size(),
            region_sites.sites.internal.size());
}

TEST(Plans, SamplingIsDeterministicAndInRange) {
  const auto h = CampaignHarness::make();
  const auto sites = fault::enumerate_sites(h.mod, h.rid, 0, {});
  const auto a = fault::sample_plans(sites, fault::TargetClass::Internal, 64,
                                     123);
  const auto b = fault::sample_plans(sites, fault::TargetClass::Internal, 64,
                                     123);
  const auto c = fault::sample_plans(sites, fault::TargetClass::Internal, 64,
                                     456);
  ASSERT_EQ(a.size(), 64u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dyn_index, b[i].dyn_index);
    EXPECT_EQ(a[i].bit, b[i].bit);
    EXPECT_EQ(a[i].kind, vm::FaultPlan::Kind::ResultBit);
    EXPECT_LT(a[i].bit, 64u);
  }
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].dyn_index != c[i].dyn_index || a[i].bit != c[i].bit) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(Plans, InputPlansTargetRegionEntry) {
  const auto h = CampaignHarness::make();
  const auto sites = fault::enumerate_sites(h.mod, h.rid, 0, {});
  const auto plans =
      fault::sample_plans(sites, fault::TargetClass::Input, 32, 9);
  ASSERT_EQ(plans.size(), 32u);
  for (const auto& p : plans) {
    EXPECT_EQ(p.kind, vm::FaultPlan::Kind::RegionInputMemoryBit);
    EXPECT_EQ(p.region_id, h.rid);
    EXPECT_EQ(p.region_instance, 0u);
  }
}

TEST(Outcome, Classification) {
  const auto h = CampaignHarness::make();
  // Identical outputs -> success.
  vm::RunResult ok;
  ok.outputs = h.golden;
  EXPECT_EQ(fault::classify_outcome(ok, h.golden, h.verifier),
            fault::Outcome::VerificationSuccess);
  // Small perturbation within tolerance -> success.
  vm::RunResult close = ok;
  close.outputs[0].bits = util::f64_to_bits(h.golden[0].as_f64() * (1 + 1e-6));
  EXPECT_EQ(fault::classify_outcome(close, h.golden, h.verifier),
            fault::Outcome::VerificationSuccess);
  // Large perturbation -> failed.
  vm::RunResult far = ok;
  far.outputs[0].bits = util::f64_to_bits(h.golden[0].as_f64() * 2);
  EXPECT_EQ(fault::classify_outcome(far, h.golden, h.verifier),
            fault::Outcome::VerificationFailed);
  // Trap -> crashed.
  vm::RunResult crash;
  crash.trap = vm::TrapKind::OutOfBounds;
  EXPECT_EQ(fault::classify_outcome(crash, h.golden, h.verifier),
            fault::Outcome::Crashed);
}

TEST(ToleranceVerifier, ChecksShapeAndTypes) {
  const auto v = fault::tolerance_verifier(1e-6);
  std::vector<vm::OutputValue> a = {{42, ir::Type::I64}};
  std::vector<vm::OutputValue> b = {{42, ir::Type::I64}, {1, ir::Type::I64}};
  EXPECT_FALSE(v(a, b));  // arity mismatch
  std::vector<vm::OutputValue> c = {{43, ir::Type::I64}};
  EXPECT_FALSE(v(c, a));  // integer must be exact
  EXPECT_TRUE(v(a, a));
  // NaN output never verifies.
  std::vector<vm::OutputValue> n = {
      {util::f64_to_bits(std::nan("")), ir::Type::F64}};
  std::vector<vm::OutputValue> g = {{util::f64_to_bits(1.0), ir::Type::F64}};
  EXPECT_FALSE(v(n, g));
}

TEST(Campaign, AccountingAndDeterminism) {
  const auto h = CampaignHarness::make();
  const auto sites = fault::enumerate_sites(h.mod, h.rid, 0, {});
  fault::CampaignConfig cfg;
  cfg.trials = 100;
  cfg.seed = 2024;
  const auto r1 = fault::run_campaign(h.mod, sites,
                                      fault::TargetClass::Internal, h.golden,
                                      h.verifier, {}, cfg);
  const auto r2 = fault::run_campaign(h.mod, sites,
                                      fault::TargetClass::Internal, h.golden,
                                      h.verifier, {}, cfg);
  EXPECT_EQ(r1.trials, 100u);
  EXPECT_EQ(r1.success + r1.failed + r1.crashed, r1.trials);
  EXPECT_EQ(r1.success, r2.success);
  EXPECT_EQ(r1.failed, r2.failed);
  EXPECT_EQ(r1.crashed, r2.crashed);
  // A sum-of-doubles region tolerates many low-mantissa flips but not all.
  EXPECT_GT(r1.success_rate(), 0.2);
  EXPECT_LT(r1.success_rate(), 1.0);
}

TEST(Campaign, LeveugleDefaultTrialCount) {
  const auto h = CampaignHarness::make();
  const auto sites = fault::enumerate_sites(h.mod, h.rid, 0, {});
  fault::CampaignConfig cfg;  // trials = 0 -> derive
  cfg.confidence = 0.95;
  cfg.margin = 0.03;
  const auto r = fault::run_campaign(h.mod, sites,
                                     fault::TargetClass::Internal, h.golden,
                                     h.verifier, {}, cfg);
  const auto expected = util::fault_injection_sample_size(
      sites.sites.internal_bits(), 0.95, 0.03);
  EXPECT_EQ(r.trials, expected);
}

TEST(Campaign, InputCampaignRuns) {
  const auto h = CampaignHarness::make();
  const auto sites = fault::enumerate_sites(h.mod, h.rid, 0, {});
  fault::CampaignConfig cfg;
  cfg.trials = 50;
  const auto r = fault::run_campaign(h.mod, sites, fault::TargetClass::Input,
                                     h.golden, h.verifier, {}, cfg);
  EXPECT_EQ(r.trials, 50u);
  EXPECT_EQ(r.success + r.failed + r.crashed, r.trials);
}

TEST(Campaign, EmptyPopulationIsSafe) {
  const auto h = CampaignHarness::make();
  fault::SiteEnumerationResult empty;
  fault::CampaignConfig cfg;
  cfg.trials = 10;
  const auto r = fault::run_campaign(h.mod, empty,
                                     fault::TargetClass::Internal, h.golden,
                                     h.verifier, {}, cfg);
  EXPECT_EQ(r.trials, 0u);
}

}  // namespace
}  // namespace ft
